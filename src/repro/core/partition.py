"""Dynamic-programming backbone partitioning (paper §4.1 and §4.3).

The partitioner minimises the upper bound on FIFO-1F1B pipeline
execution time

    T_max = (M + 2S - 2) * T0 + T0^{S-C}            (Eqn. 1)

over all ways of cutting the backbone's ``L`` layers into ``S``
contiguous stages, where

* ``T0`` (per stage, Eqn. 3) is the larger of the stage's
  forward+backward compute per micro-batch and its inter-stage
  communication time;
* ``T0^{S-C}`` (Eqns. 4-6) is the largest gap between a stage's gradient
  all-reduce time and the compensation (overlap) time available to it —
  the backward work of all layers *before* the stage, which is exactly
  what still runs on the critical path when the stage's sync starts.
  The prefix-sum form is the lower bound the paper adopts because a
  sub-problem does not yet know how those earlier layers are split.

With self-conditioning (§4.3) the per-stage bound gains a second
forward pass (Eqn. 17) and the objective a feedback term ``T_F``
(Eqn. 18); the optimiser minimises the *expectation* over the
self-conditioning activation probability ``p``.

Because the objective is monotone in the pair ``(T0, T0^{S-C})`` — a
triple with self-conditioning — an exact solution only needs the Pareto
frontier of per-prefix values, which this module tracks explicitly
(states are ``(layers-consumed, stages-used)``; frontier sizes stay
small in practice).  Setting ``r != D/S`` per stage (heterogeneous
replication) is supported behind a flag with devices added to the
state, matching the general recursion (Eqns. 7-9); the default forces
homogeneous replication as in the paper's evaluation (footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..cluster.collectives import CommCosts
from ..errors import ConfigurationError, PartitionError
from ..profiling.records import ProfileDB
from .caches import PlannerCaches, default_caches
from .plan import PartitionPlan, StageAssignment


@dataclass(frozen=True)
class PartitionContext:
    """Everything the stage cost functions need.

    ``allreduce`` prices every stage's gradient all-reduce with one
    flat :class:`CommCosts` pair.  A stage's sync group actually spans
    its ``r`` replicas times the data-parallel degree, so callers that
    know the cluster layout can instead supply ``allreduce_by_r`` — a
    per-replica-count cost resolver — and the DPs price Eqn. 4
    faithfully for every candidate ``r``.  ``allreduce_key`` must then
    identify the resolver's constants (a hashable value such as
    ``(cluster, D)``): DP memo keys use it in place of the callable,
    which is neither hashable nor comparable across planner instances.

    ``pricing`` selects the per-stage bound the DP optimises.  The
    ``"default"`` mode is Eqn. 1 as stated; ``"zerobubble"`` prices the
    split-backward schedule family, where only the grad-input half (B)
    of a backward sits on the warm-up/cool-down critical path while the
    grad-weight half (W) slides into bubbles — the ramp coefficient
    ``2S - 2`` then applies to ``max(fwd + B, comm)`` instead of the
    full ``T0`` (the steady-state ``M`` stages still pay full F+B+W:
    every device must execute W somewhere).  With self-conditioning the
    zero-bubble refinement is skipped and default pricing applies — the
    frontier's second coordinate carries ``T0^{SC}`` in that case, and
    the full-backward bound remains a valid (looser) upper bound.
    """

    profile: ProfileDB
    component: str
    batch_per_group: float
    num_micro_batches: int
    p2p: CommCosts
    allreduce: CommCosts
    self_conditioning: bool = False
    self_conditioning_prob: float = 0.5
    allreduce_by_r: Callable[[int], CommCosts] | None = field(
        default=None, compare=False
    )
    allreduce_key: tuple | None = None
    pricing: str = "default"
    #: Per-device relative compute speeds along the pipeline group's
    #: device chain (group-local ranks ``0..D-1``; the planner folds the
    #: data-parallel replicas of each position to their bottleneck).
    #: ``None`` — the homogeneous default — keeps every DP on the
    #: unscaled code path byte-for-byte.  A tuple routes the DPs through
    #: the scaled stage bounds: a stage on window ``[pd, pd+r)`` divides
    #: its compute (never its communication) by the window's minimum
    #: factor.  The tuple is deliberately *not* canonicalised: an
    #: all-1.0 tuple exercises the scaled path and must reduce
    #: bit-identically to ``None`` (x / 1.0 is IEEE-exact), which the
    #: property suite asserts.
    speed_scales: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.allreduce_by_r is not None and self.allreduce_key is None:
            raise ConfigurationError(
                "allreduce_by_r needs an allreduce_key identifying its "
                "constants for the DP memo keys"
            )
        if self.pricing not in ("default", "zerobubble"):
            raise ConfigurationError(
                f"unknown partition pricing {self.pricing!r}; "
                "expected 'default' or 'zerobubble'"
            )
        if self.speed_scales is not None:
            if not isinstance(self.speed_scales, tuple):
                raise ConfigurationError(
                    "speed_scales must be a tuple (or None for a "
                    "homogeneous group)"
                )
            for scale in self.speed_scales:
                if not scale > 0:
                    raise ConfigurationError(
                        f"speed scales must be positive, got {scale}"
                    )

    @property
    def zb_pricing(self) -> bool:
        """True when the DP prices the split-backward ramp (the
        refinement is mutually exclusive with the self-conditioning
        coordinate, which rides the same frontier slot)."""
        return self.pricing == "zerobubble" and not self.self_conditioning

    @property
    def micro_batch(self) -> float:
        return self.batch_per_group / self.num_micro_batches

    def allreduce_for(self, replicas: int) -> CommCosts:
        """The all-reduce constants of a stage with ``replicas`` devices."""
        if self.allreduce_by_r is not None:
            return self.allreduce_by_r(replicas)
        return self.allreduce

    @property
    def sync_key(self) -> tuple | CommCosts:
        """Hashable identity of the sync-cost model, for DP memo keys
        whose tables span several replica counts."""
        if self.allreduce_by_r is not None:
            return self.allreduce_key
        return self.allreduce

    @property
    def comp_scale(self) -> float:
        """Deflator of the compensation term under mixed speeds.

        Eqn. 5 credits a stage's sync with the backward work of all
        *earlier* layers, whose hosting devices (and speeds) a
        sub-problem does not know yet.  Crediting the nominal time
        divided by the group's *maximum* factor under-credits every
        possible placement — earlier layers can never run faster than
        on the group's fastest device — so the resulting ``Y`` keeps
        ``T_max`` a valid upper bound.
        """
        if self.speed_scales is None:
            return 1.0
        return max(self.speed_scales)

    def window_scale(self, pd: int, r: int) -> float:
        """Bottleneck speed factor of the device window ``[pd, pd+r)``.

        A stage replicated on that window runs its compute at the pace
        of its slowest device (the replicas execute the same layers on
        equal local batches and synchronise at the stage boundary).
        """
        if self.speed_scales is None:
            return 1.0
        return min(self.speed_scales[pd : pd + r])


class StageCosts:
    """Per-stage cost evaluator with prefix-sum acceleration.

    All quantities are per micro-batch at the stage's local batch size
    ``micro_batch / r``.
    """

    def __init__(self, ctx: PartitionContext, replicas: int):
        if replicas <= 0:
            raise ConfigurationError("replicas must be positive")
        self.ctx = ctx
        self.replicas = replicas
        #: all-reduce constants resolved for this stage's replica count
        #: (falls back to the context's flat ``allreduce`` pair).
        self.sync_costs = ctx.allreduce_for(replicas)
        prof = ctx.profile
        comp = ctx.component
        n = prof.num_layers(comp)
        self.num_layers = n
        b = ctx.micro_batch / replicas
        if b <= 0:
            raise ConfigurationError("local batch must be positive")
        self.local_batch = b
        # Prefix sums over layers: fwd/bwd times, the grad-weight (W)
        # share of each backward, gradient bytes.
        self._fwd = [0.0] * (n + 1)
        self._bwd = [0.0] * (n + 1)
        self._bww = [0.0] * (n + 1)
        self._grad = [0.0] * (n + 1)
        for i in range(n):
            self._fwd[i + 1] = self._fwd[i] + prof.fwd_ms(comp, i, b)
            self._bwd[i + 1] = self._bwd[i] + prof.bwd_ms(comp, i, b)
            self._bww[i + 1] = self._bww[i] + prof.bwd_w_ms(comp, i, b)
            self._grad[i + 1] = self._grad[i] + prof.layer(comp, i).grad_bytes

    # -- pieces ----------------------------------------------------------------

    def fwd(self, lo: int, hi: int) -> float:
        return self._fwd[hi] - self._fwd[lo]

    def bwd(self, lo: int, hi: int) -> float:
        return self._bwd[hi] - self._bwd[lo]

    def bwd_w(self, lo: int, hi: int) -> float:
        """Grad-weight (W) share of the stage's backward."""
        return self._bww[hi] - self._bww[lo]

    def bwd_b(self, lo: int, hi: int) -> float:
        """Grad-input (B) share: the part on the gradient chain."""
        return max(0.0, self.bwd(lo, hi) - self.bwd_w(lo, hi))

    def grad_bytes(self, lo: int, hi: int) -> float:
        return self._grad[hi] - self._grad[lo]

    def boundary_comm_ms(self, lo: int, forwards: int = 1) -> float:
        """Communication term of Eqn. 3 (or Eqn. 17 for ``forwards=2``).

        ``lo`` is the stage's first layer; the stage receives the output
        of layer ``lo - 1`` and returns its gradient, so both directions
        move ``C_{lo-1,lo}`` bytes.  Stage 0 receives loader input,
        modelled as free.
        """
        if lo == 0:
            return 0.0
        nbytes = self.ctx.profile.boundary_bytes(
            self.ctx.component, lo - 1, self.local_batch
        )
        total = (forwards + 1) * nbytes / self.ctx.p2p.bandwidth
        return total + (forwards + 1 + 1) * self.ctx.p2p.latency

    # -- per-stage bounds ---------------------------------------------------------

    def t0(self, lo: int, hi: int) -> float:
        """Eqn. 3: max(compute, communication) for stage ``[lo, hi)``."""
        return max(self.fwd(lo, hi) + self.bwd(lo, hi), self.boundary_comm_ms(lo))

    def t0_sc(self, lo: int, hi: int) -> float:
        """Eqn. 17: the self-conditioning variant (two forward passes)."""
        return max(
            2.0 * self.fwd(lo, hi) + self.bwd(lo, hi),
            self.boundary_comm_ms(lo, forwards=2),
        )

    def t0_ramp(self, lo: int, hi: int) -> float:
        """Zero-bubble ramp bound: the warm-up/cool-down slots of the
        split-backward schedule pay only forward + grad-input (B) time —
        the grad-weight (W) work slides off the ramp into bubbles.  The
        compensation term (Eqn. 5) is left unchanged: earlier layers'
        B *and* W both still execute while a stage's sync runs, so
        ``bwd(0, lo)`` remains a valid overlap lower bound."""
        return max(
            self.fwd(lo, hi) + self.bwd_b(lo, hi), self.boundary_comm_ms(lo)
        )

    def sync_ms(self, lo: int, hi: int) -> float:
        """Eqn. 4: gradient all-reduce time of stage ``[lo, hi)``."""
        g = self.grad_bytes(lo, hi)
        if g == 0:
            return 0.0
        return g / self.sync_costs.bandwidth + self.sync_costs.latency

    def compensation_ms(self, lo: int) -> float:
        """Eqn. 5 (lower bound): backward time of all layers before the
        stage, i.e. the work still running when the stage's sync starts."""
        return self.bwd(0, lo)

    def sync_gap(self, lo: int, hi: int) -> float:
        """Eqn. 6: ``T_S(s) - T_C(s)``."""
        return self.sync_ms(lo, hi) - self.compensation_ms(lo)

    def feedback_ms(self) -> float:
        """``T_F`` of §4.3: last-stage output fed back to stage 0."""
        nbytes = self.ctx.profile.boundary_bytes(
            self.ctx.component, self.num_layers - 1, self.local_batch
        )
        return nbytes / self.ctx.p2p.bandwidth + self.ctx.p2p.latency

    # -- speed-scaled bounds ------------------------------------------------------
    #
    # Used only when ``ctx.speed_scales`` is set; each divides the
    # compute term (never communication) by the hosting window's
    # bottleneck factor, unconditionally — no identity gate — so the
    # elementwise op sequence matches the array kernels exactly and a
    # scale of 1.0 stays bit-identical to the unscaled bound.

    def t0_scaled(self, lo: int, hi: int, scale: float) -> float:
        """Eqn. 3 on a device window with bottleneck factor ``scale``."""
        return max(
            (self.fwd(lo, hi) + self.bwd(lo, hi)) / scale,
            self.boundary_comm_ms(lo),
        )

    def t0_sc_scaled(self, lo: int, hi: int, scale: float) -> float:
        """Eqn. 17 (two forwards) under a window speed factor."""
        return max(
            (2.0 * self.fwd(lo, hi) + self.bwd(lo, hi)) / scale,
            self.boundary_comm_ms(lo, forwards=2),
        )

    def t0_ramp_scaled(self, lo: int, hi: int, scale: float) -> float:
        """Zero-bubble ramp bound under a window speed factor."""
        return max(
            (self.fwd(lo, hi) + self.bwd_b(lo, hi)) / scale,
            self.boundary_comm_ms(lo),
        )

    def sync_gap_scaled(self, lo: int, hi: int, comp_scale: float) -> float:
        """Eqn. 6 with the compensation deflated by the group's maximum
        speed factor (see :attr:`PartitionContext.comp_scale`)."""
        return self.sync_ms(lo, hi) - self.compensation_ms(lo) / comp_scale


# -- Pareto machinery -------------------------------------------------------------


def pareto_insert(
    frontier: list[tuple], candidate: tuple, value_dims: int
) -> bool:
    """Insert ``candidate`` whose first ``value_dims`` entries are the
    objective coordinates; drop it (return False) if dominated, and prune
    points it dominates."""
    if value_dims == 3:
        # Hot path of the partition DP: unrolled comparisons (same
        # dominance tests, no generator/zip overhead).
        c0, c1, c2 = candidate[0], candidate[1], candidate[2]
        keep: list[tuple] = []
        for existing in frontier:
            e0, e1, e2 = existing[0], existing[1], existing[2]
            if e0 <= c0 and e1 <= c1 and e2 <= c2:
                # existing dominates (or equals) the candidate
                return False
            if not (c0 <= e0 and c1 <= e1 and c2 <= e2):
                keep.append(existing)
            # else: candidate dominates `existing` -> drop it
        keep.append(candidate)
        frontier[:] = keep
        return True
    if value_dims == 2:
        # Hot path of the bidirectional CDM DP.
        c0, c1 = candidate[0], candidate[1]
        keep = []
        for existing in frontier:
            e0, e1 = existing[0], existing[1]
            if e0 <= c0 and e1 <= c1:
                return False
            if not (c0 <= e0 and c1 <= e1):
                keep.append(existing)
        keep.append(candidate)
        frontier[:] = keep
        return True
    cvals = candidate[:value_dims]
    keep = []
    for existing in frontier:
        evals = existing[:value_dims]
        if all(e <= c for e, c in zip(evals, cvals)):
            # existing dominates (or equals) the candidate
            return False
        if not all(c <= e for c, e in zip(cvals, evals)):
            keep.append(existing)
        # else: candidate dominates `existing` -> drop it
    keep.append(candidate)
    frontier[:] = keep
    return True


def partition_backbone(
    ctx: PartitionContext,
    num_stages: int,
    group_size: int,
    *,
    heterogeneous: bool = False,
    caches: PlannerCaches | None = None,
    dp_kernel: str = "array",
) -> PartitionPlan:
    """Optimally cut one backbone into ``num_stages`` stages (§4.1/§4.3).

    With ``heterogeneous=False`` every stage replicates on
    ``group_size / num_stages`` devices (the paper's evaluation setting,
    footnote 2) and the DP state is (layers, stages).  With
    ``heterogeneous=True`` the per-stage replica count is free and the
    remaining-device count joins the state (Eqns. 7-9).  ``caches``
    holds the memoised DP tables (the process-wide default when None).

    ``dp_kernel`` selects the table-build engine: ``"array"`` (the
    vectorized numpy kernels of :mod:`.partition_kernels`) or
    ``"reference"`` (the pure-Python differential oracles).  Both
    produce bit-identical tables and plans; the knob exists for
    debugging and for the differential test suite.
    """
    caches = caches if caches is not None else default_caches()
    S = num_stages
    D = group_size
    M = ctx.num_micro_batches
    L = ctx.profile.num_layers(ctx.component)
    if S <= 0 or D <= 0:
        raise ConfigurationError("num_stages and group_size must be positive")
    if S > L:
        raise PartitionError(
            f"cannot cut {L} layers into {S} non-empty stages"
        )
    if S > D:
        raise PartitionError(f"cannot place {S} stages on {D} devices")
    if ctx.speed_scales is not None and len(ctx.speed_scales) != D:
        raise ConfigurationError(
            f"speed_scales must carry one factor per group device "
            f"(got {len(ctx.speed_scales)} for group size {D})"
        )

    if heterogeneous:
        return _partition_heterogeneous(ctx, S, D, caches, dp_kernel=dp_kernel)

    if D % S != 0:
        raise PartitionError(
            f"homogeneous replication needs S | D (got S={S}, D={D}); "
            "use heterogeneous=True otherwise"
        )
    r = D // S
    if ctx.micro_batch < r:
        # Same per-replica sample floor the heterogeneous DP enforces
        # (r_cap): a stage replica must see at least one sample per
        # micro-batch.  Keeping both paths consistent preserves the
        # invariant that the heterogeneous DP (which can always pick
        # uniform r = D/S) never does worse than this path.
        raise PartitionError(
            f"uniform replication r={r} needs at least {r} samples per "
            f"micro-batch (got {ctx.micro_batch:g})"
        )
    plan_stages, w, w_sc, y, obj = _solve_chain(
        ctx, r, L, S, caches, dp_kernel=dp_kernel
    )
    stages = tuple(
        StageAssignment(ctx.component, lo, hi, replicas=r) for lo, hi in plan_stages
    )
    return PartitionPlan(
        down=stages,
        num_stages=S,
        num_micro_batches=M,
        group_size=D,
        batch_per_group=ctx.batch_per_group,
        t_max_ms=obj,
        w_ms=_expected_w(ctx, w, w_sc),
        y_ms=y,
        self_conditioning=ctx.self_conditioning,
    )


def _expected_w(ctx: PartitionContext, w: float, w_sc: float) -> float:
    if not ctx.self_conditioning:
        return w
    p = ctx.self_conditioning_prob
    return p * w_sc + (1.0 - p) * w


def _objective(
    ctx: PartitionContext, S: int, w: float, w_sc: float, y: float, tf: float
) -> float:
    """Expected T_max over the self-conditioning coin flip (§4.3).

    Under zero-bubble pricing the frontier's second coordinate carries
    the ramp bound (``t0_ramp``) instead of ``T0^{SC}``: the steady
    phase pays ``M`` full stage times, the ``2S - 2`` ramp slots only
    forward + grad-input.
    """
    M = ctx.num_micro_batches
    if ctx.zb_pricing:
        return M * w + (2 * S - 2) * w_sc + y
    coeff = M + 2 * S - 2
    vanilla = coeff * w + y
    if not ctx.self_conditioning:
        return vanilla
    p = ctx.self_conditioning_prob
    sc = coeff * w_sc + y + tf
    return p * sc + (1.0 - p) * vanilla


def _chain_frontiers(
    ctx: PartitionContext,
    r: int,
    L: int,
    S: int,
    caches: PlannerCaches,
    *,
    dp_kernel: str = "array",
) -> tuple[list[tuple[tuple, ...]], float]:
    """The (memoized) Pareto-DP table of :func:`_solve_chain`.

    Returns ``(history, tf)``.  ``history[s][l]`` is the frontier of
    (w, w_sc, y, cut, parent_index) for prefixes of ``l`` layers in
    ``s`` stages; the first three values are objective coordinates,
    cut/parent enable backtracking.  Frontier cells are frozen to
    tuples before caching, so the read-only contract is enforced by
    the engine: a caller mutating a local copy of a frontier must copy
    it first and cannot corrupt the cached table.  ``tf`` is the
    feedback time ``T_F`` (0.0 without self-conditioning), computed
    with the table while the :class:`StageCosts` are warm.  The key is
    derived arithmetically — the O(L) prefix sums are built only on a
    cache miss.

    Tables live in ``caches.chains``, keyed weakly by the profile so
    sweeps sharing one DB (planner + SPP + ablation variants) share
    the expensive DP work and tables die with the profile.  The
    frontiers depend only on (component, S, the stage-local batch
    size, the communication constants, the self-conditioning flag) —
    notably *not* on the micro-batch count M or the self-conditioning
    probability, which enter only the final objective selection.

    ``dp_kernel`` picks the build engine (``"array"`` — the vectorized
    kernels — or the pure-Python ``"reference"`` oracle).  The engines
    are bit-identical by contract; the key still carries the knob so
    tables never alias across engines and a differential run exercises
    both builders.
    """
    key = (
        ctx.component,
        L,
        S,
        # The stage-local batch, exactly as StageCosts computes it.
        ctx.micro_batch / r,
        ctx.p2p,
        # The sync constants actually resolved for this replica count:
        # with a per-replica-count resolver, contexts sharing one
        # stage-local batch but differing in (micro-batch, r) price
        # Eqn. 4 differently and must not share a table.
        ctx.allreduce_for(r),
        ctx.self_conditioning,
        # Zero-bubble pricing repurposes the second frontier coordinate
        # for the ramp bound, so its tables must not alias the default
        # ones (all non-splitting families share "default" tables).
        ctx.zb_pricing,
        dp_kernel,
        # Heterogeneous device speeds: stage s covers the group-local
        # window [(s-1)r, sr), so a scaled table depends on the full
        # factor tuple AND on r — two contexts sharing one stage-local
        # batch but differing in r slice different windows.  None keeps
        # homogeneous keys stable across speed-agnostic callers.
        None if ctx.speed_scales is None else (r, ctx.speed_scales),
    )
    cached = caches.chains.get(ctx.profile, key)
    if cached is not None:
        return cached

    if dp_kernel == "array":
        from . import partition_kernels

        history, tf = partition_kernels.chain_table_array(ctx, r, L, S)
    elif dp_kernel == "reference":
        history, tf = _chain_frontiers_reference(ctx, r, L, S)
    else:
        raise ConfigurationError(
            f"unknown dp_kernel {dp_kernel!r}; "
            "expected 'array' or 'reference'"
        )
    history = [tuple(tuple(cell) for cell in row) for row in history]
    cached = (history, tf)
    caches.chains.put(ctx.profile, key, cached)
    return cached


def _chain_frontiers_reference(
    ctx: PartitionContext, r: int, L: int, S: int
) -> tuple[list[list[list[tuple]]], float]:
    """Pure-Python differential oracle of :func:`_chain_frontiers`.

    Retained verbatim as the bit-identity ground truth for the array
    kernels (the ``simulate_reference`` discipline); selected via
    ``dp_kernel="reference"``.
    """
    costs = StageCosts(ctx, r)
    scaled = ctx.speed_scales is not None
    comp_scale = ctx.comp_scale
    prev: list[list[tuple]] = [[] for _ in range(L + 1)]
    prev[0] = [(0.0, 0.0, float("-inf"), -1, -1)]
    history: list[list[list[tuple]]] = [prev]

    for s in range(1, S + 1):
        cur: list[list[tuple]] = [[] for _ in range(L + 1)]
        # Stage s (1-based) replicates on the group-local device window
        # [(s-1)r, sr); its compute runs at the window's bottleneck pace.
        sigma = ctx.window_scale((s - 1) * r, r) if scaled else 1.0
        # A prefix of l layers in s stages needs l >= s and leaves at
        # least S - s layers for the remaining stages.
        for l in range(s, L - (S - s) + 1):
            frontier: list[tuple] = []
            for c in range(s - 1, l):
                parents = prev[c]
                if not parents:
                    continue
                if scaled:
                    t0 = costs.t0_scaled(c, l, sigma)
                    if ctx.self_conditioning:
                        t0_sc = costs.t0_sc_scaled(c, l, sigma)
                    elif ctx.zb_pricing:
                        t0_sc = costs.t0_ramp_scaled(c, l, sigma)
                    else:
                        t0_sc = t0
                    gap = costs.sync_gap_scaled(c, l, comp_scale)
                else:
                    t0 = costs.t0(c, l)
                    if ctx.self_conditioning:
                        t0_sc = costs.t0_sc(c, l)
                    elif ctx.zb_pricing:
                        # The second coordinate carries the split-backward
                        # ramp bound (see _objective); dominance over the
                        # triple is still a monotone max-composition.
                        t0_sc = costs.t0_ramp(c, l)
                    else:
                        t0_sc = t0
                    gap = costs.sync_gap(c, l)
                for pi, parent in enumerate(parents):
                    pw, pwsc, py = parent[0], parent[1], parent[2]
                    cand = (
                        max(pw, t0),
                        max(pwsc, t0_sc),
                        max(py, gap),
                        c,
                        pi,
                    )
                    pareto_insert(frontier, cand, 3)
            cur[l] = frontier
        history.append(cur)
        prev = cur

    # Feedback time computed while the StageCosts are warm: the final
    # selection would otherwise rebuild the O(L) prefix sums on every
    # warm-path call just for this one value.
    tf = costs.feedback_ms() if ctx.self_conditioning else 0.0
    return history, tf


def _solve_chain(
    ctx: PartitionContext,
    r: int,
    L: int,
    S: int,
    caches: PlannerCaches,
    *,
    dp_kernel: str = "array",
) -> tuple[list[tuple[int, int]], float, float, float, float]:
    """Pareto DP over prefixes for a fixed replica count.

    Returns (stage slices, W, W_sc, Y, objective).
    """
    history, tf = _chain_frontiers(ctx, r, L, S, caches, dp_kernel=dp_kernel)
    final = history[S][L]
    if not final:
        raise PartitionError(
            f"no feasible partition of {L} layers into {S} stages"
        )
    best = min(
        final,
        key=lambda e: (_objective(ctx, S, e[0], e[1], e[2], tf), e[0], e[2]),
    )
    obj = _objective(ctx, S, best[0], best[1], best[2], tf)

    # Backtrack the cut positions.
    cuts: list[int] = []
    entry = best
    for s in range(S, 0, -1):
        c = entry[3]
        cuts.append(c)
        entry = history[s - 1][c][entry[4]]
    cuts.reverse()
    slices = [(cuts[i], cuts[i + 1] if i + 1 < S else L) for i in range(S)]
    return slices, best[0], best[1], best[2], obj


class _LazyStageCosts:
    """On-demand :class:`StageCosts` per replica count.

    The heterogeneous DPs only ever touch replica counts that some
    feasible assignment can use (``r <= D - S + 1``); building the
    O(L) prefix sums for the rest — as the eager ``costs_by_r`` dict
    used to — is pure waste.  ``build`` lets variants substitute their
    own evaluator (the bidirectional DP's comm-scaled one).
    """

    def __init__(self, ctx: PartitionContext, build=StageCosts):
        self._ctx = ctx
        self._build = build
        self._by_r: dict[int, StageCosts] = {}

    def __call__(self, r: int) -> StageCosts:
        costs = self._by_r.get(r)
        if costs is None:
            costs = self._by_r[r] = self._build(self._ctx, r)
        return costs


def _het_frontiers(
    ctx: PartitionContext,
    L: int,
    S: int,
    D: int,
    caches: PlannerCaches,
    *,
    dp_kernel: str = "array",
) -> tuple[list[dict[tuple, tuple[tuple, ...]]], dict[int, float]]:
    """The (memoized) Pareto-DP table of :func:`_partition_heterogeneous`.

    Returns ``(history, tf_by_r)``.  ``history[s][(l, d)]`` is the
    frontier of ``(w, w_sc, y, cut, replicas, parent_index)`` for
    prefixes of ``l`` layers on ``d`` devices in ``s`` stages — except
    the last stage, whose buckets are keyed ``(l, d, r)`` so that the
    r-dependent feedback term cannot be pruned away by (w, w_sc, y)
    dominance.  Frontiers are frozen to tuples before caching, so the
    read-only contract is engine-enforced.  ``tf_by_r`` maps every
    last-stage replica count to its feedback time ``T_F`` (empty
    without self-conditioning); it is computed with the table — while
    the per-``r`` ``StageCosts`` are warm — and cached alongside it, so
    neither cold nor hit paths rebuild O(L) prefix sums for the final
    selection.

    Tables live in ``caches.het``: the ``(layers, stages, devices)``
    Pareto tables depend only on (component, L, S, D, the per-group
    micro-batch size, the communication constants, the
    self-conditioning flag) — not on the micro-batch *count* M or the
    self-conditioning probability, which enter only the final objective
    selection — so sweeps sharing one DB (planner + SPP + ablation
    variants via one :class:`PlannerCaches`) share the expensive DP
    work, and the tables die with the profile.  ``dp_kernel`` joins the
    key so array and reference tables never alias.
    """
    key = (
        ctx.component,
        L,
        S,
        D,
        ctx.micro_batch,
        ctx.p2p,
        # One heterogeneous table spans every replica count, so the key
        # carries the sync model's identity (the resolver's constant
        # tuple, or the flat CommCosts pair when no resolver is set).
        ctx.sync_key,
        ctx.self_conditioning,
        # See _chain_frontiers: zero-bubble tables carry the ramp bound
        # in the second coordinate and must not alias default ones.
        ctx.zb_pricing,
        dp_kernel,
        # Per-device speed factors (the table's windows are internal to
        # the DP state, so the tuple alone suffices; D is above).
        ctx.speed_scales,
    )
    cached = caches.het.get(ctx.profile, key)
    if cached is not None:
        return cached

    if dp_kernel == "array":
        from . import partition_kernels

        history, tf_by_r = partition_kernels.het_table_array(ctx, L, S, D)
    elif dp_kernel == "reference":
        history, tf_by_r = _het_frontiers_reference(ctx, L, S, D)
    else:
        raise ConfigurationError(
            f"unknown dp_kernel {dp_kernel!r}; "
            "expected 'array' or 'reference'"
        )
    history = [
        {state: tuple(entries) for state, entries in stage.items()}
        for stage in history
    ]
    cached = (history, tf_by_r)
    caches.het.put(ctx.profile, key, cached)
    return cached


def _het_frontiers_reference(
    ctx: PartitionContext, L: int, S: int, D: int
) -> tuple[list[dict[tuple, list[tuple]]], dict[int, float]]:
    """Pure-Python differential oracle of :func:`_het_frontiers`.

    Retained verbatim as the bit-identity ground truth for the array
    kernels; selected via ``dp_kernel="reference"``.
    """
    costs_for = _LazyStageCosts(ctx)
    scaled = ctx.speed_scales is not None
    comp_scale = ctx.comp_scale
    #: per-(r, lo, hi, window-scale) segment costs — distinct parent
    #: states reach the same stage slice (and, under mixed speeds, equal
    #: window factors), so the interpolation work is shared.
    seg: dict[tuple, tuple[float, float, float]] = {}
    # Physical feasibility: every stage replica must see at least one
    # sample per micro-batch (the homogeneous sweep enforces the same
    # floor via its r = D/S guard).  Larger r always lowers a stage's
    # modeled compute, so without this cap the DP would happily pick
    # unrunnable sub-sample local batches.
    r_cap = int(ctx.micro_batch)

    # history[s][(l, d)] -> frontier entries (w, w_sc, y, cut, r, parent)
    history: list[dict[tuple[int, int], list[tuple]]] = [
        {(0, 0): [(0.0, 0.0, float("-inf"), -1, 0, -1)]}
    ]
    for s in range(1, S + 1):
        cur: dict[tuple[int, int], list[tuple]] = {}
        stages_left = S - s
        for (pl, pd), parents in history[s - 1].items():
            # Device-count pruning: every remaining stage needs at least
            # one device, so replica counts beyond ``D - pd -
            # stages_left`` lead to unreachable states and are never
            # generated (nor their StageCosts built).
            max_r = min(D - pd - stages_left, r_cap)
            if max_r <= 0:
                continue
            if stages_left:
                # Leave at least one layer per remaining stage.
                l_values = range(pl + 1, L - stages_left + 1)
            else:
                # Last stage: only the full-chain prefix can become a
                # feasible plan; partial prefixes are dead states.
                l_values = (L,)
            for l in l_values:
                for r in range(1, max_r + 1):
                    # The stage would occupy the group-local window
                    # [pd, pd+r); under mixed speeds its compute runs at
                    # the window's bottleneck factor, which joins the
                    # memo key (equal windows still share).
                    w = ctx.window_scale(pd, r)
                    seg_key = (r, pl, l, w)
                    vals = seg.get(seg_key)
                    if vals is None:
                        costs = costs_for(r)
                        if scaled:
                            t0 = costs.t0_scaled(pl, l, w)
                            if ctx.self_conditioning:
                                t0_sc = costs.t0_sc_scaled(pl, l, w)
                            elif ctx.zb_pricing:
                                t0_sc = costs.t0_ramp_scaled(pl, l, w)
                            else:
                                t0_sc = t0
                            gap = costs.sync_gap_scaled(pl, l, comp_scale)
                        else:
                            t0 = costs.t0(pl, l)
                            if ctx.self_conditioning:
                                t0_sc = costs.t0_sc(pl, l)
                            elif ctx.zb_pricing:
                                t0_sc = costs.t0_ramp(pl, l)
                            else:
                                t0_sc = t0
                            gap = costs.sync_gap(pl, l)
                        vals = seg[seg_key] = (t0, t0_sc, gap)
                    t0, t0_sc, gap = vals
                    # Last-stage buckets are additionally keyed by the
                    # stage's own replica count: the feedback term T_F
                    # (§4.3) depends on the *last* stage's r, so entries
                    # that differ only there are incomparable under the
                    # (w, w_sc, y) dominance test and must not prune
                    # each other.
                    state = (l, pd + r, r) if stages_left == 0 else (l, pd + r)
                    frontier = cur.setdefault(state, [])
                    for pi, parent in enumerate(parents):
                        cand = (
                            max(parent[0], t0),
                            max(parent[1], t0_sc),
                            max(parent[2], gap),
                            pl,
                            r,
                            pi,
                        )
                        pareto_insert(frontier, cand, 3)
        history.append(cur)

    # Feedback times for every last-stage replica count, computed here
    # while the StageCosts are still warm (the final selection would
    # otherwise rebuild the O(L) prefix sums on every cold table).
    tf_by_r: dict[int, float] = {}
    if ctx.self_conditioning:
        for state in history[S]:
            r = state[2]
            if r not in tf_by_r:
                tf_by_r[r] = costs_for(r).feedback_ms()

    return history, tf_by_r


def _partition_heterogeneous(
    ctx: PartitionContext,
    S: int,
    D: int,
    caches: PlannerCaches,
    *,
    dp_kernel: str = "array",
) -> PartitionPlan:
    """General DP with per-stage replica counts (Eqns. 7-9).

    State: (layers consumed, stages used, devices consumed) -> Pareto
    frontier of (W, W_sc, Y) with backtracking info (cut, replicas,
    parent index).  Stage costs depend on the stage's own replica count;
    :class:`StageCosts` are built lazily per used ``r`` and the DP table
    is memoized per profile (``caches.het``), so only the final
    M-dependent objective selection runs per call.
    """
    L = ctx.profile.num_layers(ctx.component)
    history, tf_by_r = _het_frontiers(ctx, L, S, D, caches, dp_kernel=dp_kernel)

    # Accept any full assignment that uses all L layers; devices may be
    # partially used but using all of them never hurts, so prefer d = D.
    finals = [
        (key, e)
        for key, entries in history[S].items()
        if key[0] == L
        for e in entries
    ]
    if not finals:
        raise PartitionError(
            f"no feasible heterogeneous partition of {L} layers into {S} "
            f"stages on {D} devices"
        )
    def tf_for(r: int) -> float:
        # Prepopulated by _het_frontiers for every last-stage r.
        return tf_by_r[r] if ctx.self_conditioning else 0.0

    best_key, best = min(
        finals,
        key=lambda ke: (
            _objective(ctx, S, ke[1][0], ke[1][1], ke[1][2], tf_for(ke[1][4])),
            -ke[0][1],
        ),
    )
    obj = _objective(ctx, S, best[0], best[1], best[2], tf_for(best[4]))

    # Backtrack.
    assignments: list[StageAssignment] = []
    l, d, entry = best_key[0], best_key[1], best
    for s in range(S, 0, -1):
        c, r = entry[3], entry[4]
        assignments.append(StageAssignment(ctx.component, c, l, replicas=r))
        parent_key = (c, d - r)
        entry = history[s - 1][parent_key][entry[5]]
        l, d = c, d - r
    assignments.reverse()
    for i, a in enumerate(assignments):
        # StageAssignment is positional in the chain; re-check contiguity.
        if i > 0 and a.lo != assignments[i - 1].hi:
            raise PartitionError("backtracking produced a non-contiguous chain")

    return PartitionPlan(
        down=tuple(assignments),
        num_stages=S,
        num_micro_batches=ctx.num_micro_batches,
        group_size=D,
        batch_per_group=ctx.batch_per_group,
        t_max_ms=obj,
        w_ms=_expected_w(ctx, best[0], best[1]),
        y_ms=best[2],
        self_conditioning=ctx.self_conditioning,
    )
