"""Pipeline-bubble filling primitives (§5, Algorithms 1 and 2).

This module holds the mechanics the fill *strategies* are built from:
component progress tracking (:class:`ComponentState`), the FFC
candidate enumeration (Algorithm 2), the per-bubble greedy choice
(Algorithm 1, :func:`fill_one_bubble`) and the
:class:`BubbleFiller` driver.  Which policy drives the bubbles —
the paper's chronological greedy, the cross-bubble lookahead, or no
filling at all — is chosen by name from the strategy registry in
:mod:`repro.core.fill_strategies`.

Layers inside a bubble run data-parallel over the bubble's ``d`` idle
devices at local batch ``B/d``.  A partially-processed layer becomes the
head of its component with the leftover samples treated as a full batch
in subsequent bubbles (Fig. 12).  Components obey their dependency DAG:
a component joins the ready set only once all of its dependencies have
fully executed.  Whatever does not fit in any bubble executes after the
pipeline flush, data-parallel over all devices.

Per-layer prefix times (the cumulative execution time of a component's
remaining chain at a given device width) are memoised per
:class:`ProfileDB` in ``PlannerCaches.prefixes``, so the enumeration is
shared across bubbles, across strategies, and across a sweep's repeated
simulate-and-fill evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import FillingError
from ..models.graph import ModelSpec
from ..profiling.records import ProfileDB
from .bubbles import Bubble
from .caches import FillShapeCache, PlannerCaches, default_caches
from .lru import ProfileKeyedStore
from .plan import BubbleUtilization, FillItem, FillReport

__all__ = [
    "VALID_LOCAL_BATCHES",
    "DEFAULT_MAX_CANDIDATES",
    "FillShapeCache",
    "ComponentState",
    "component_prefix_times",
    "prefix_times_raw",
    "full_batch_candidates",
    "valid_partial_samples",
    "BubbleFill",
    "fill_one_bubble",
    "apply_fill",
    "BubbleFiller",
]

#: §5's empirical local-batch-size menu for partial-batch layers
VALID_LOCAL_BATCHES: tuple[int, ...] = (4, 8, 12, 16, 24, 32, 48, 64, 96)

#: safety cap on FFC candidate enumeration (the paper's models have at
#: most three simultaneously-ready components, far below this)
DEFAULT_MAX_CANDIDATES = 4096


@dataclass
class ComponentState:
    """Mutable filling progress of one non-trainable component.

    ``next_layer`` is the first not-fully-processed layer;
    ``remaining`` is how many of the batch's samples that layer still
    has to process (== full batch for a fresh layer).
    """

    name: str
    num_layers: int
    batch: float
    next_layer: int = 0
    remaining: float = 0.0

    def __post_init__(self) -> None:
        # repro: allow[float-equality] 0.0 is the "unset" default, not math
        if self.remaining == 0.0:
            self.remaining = self.batch

    @property
    def done(self) -> bool:
        return self.next_layer >= self.num_layers

    def layer_batch(self, offset: int) -> float:
        """Samples still to process for the ``offset``-th remaining layer."""
        return self.remaining if offset == 0 else self.batch

    def consume_full(self, count: int) -> None:
        """Mark ``count`` leading remaining layers as fully processed."""
        if count < 0 or self.next_layer + count > self.num_layers:
            raise FillingError(
                f"{self.name}: cannot consume {count} layers at "
                f"{self.next_layer}/{self.num_layers}"
            )
        if count > 0:
            self.next_layer += count
            self.remaining = self.batch

    def consume_partial(self, layer: int, samples: float) -> None:
        """Process ``samples`` of the head layer."""
        if layer != self.next_layer:
            raise FillingError(
                f"{self.name}: partial batch must target the head layer "
                f"{self.next_layer}, got {layer}"
            )
        if samples <= 0 or samples > self.remaining + 1e-9:
            raise FillingError(
                f"{self.name}: invalid partial sample count {samples} "
                f"(remaining {self.remaining})"
            )
        self.remaining -= samples
        if self.remaining <= 1e-9:
            self.next_layer += 1
            self.remaining = self.batch


def component_prefix_times(
    profile: ProfileDB,
    comp: ComponentState,
    idle_devices: int,
    store: ProfileKeyedStore | None = None,
) -> tuple[float, ...]:
    """Cumulative forward times of ``comp``'s remaining chain at local
    batch ``layer_batch / idle_devices``: entry ``k`` is the time of the
    first ``k`` remaining layers, accumulated left to right (so a prefix
    of the array is bit-identical to summing the truncated chain).

    Memoised in ``store`` (default: the process-wide
    ``default_caches().prefixes``); shared by every strategy and every
    bubble that evaluates the same (state, device width) point.
    """
    return prefix_times_raw(
        profile,
        comp.name,
        comp.num_layers,
        comp.next_layer,
        comp.remaining,
        comp.batch,
        idle_devices,
        store,
    )


def prefix_times_raw(
    profile: ProfileDB,
    name: str,
    num_layers: int,
    next_layer: int,
    remaining: float,
    batch: float,
    idle_devices: int,
    store: ProfileKeyedStore | None = None,
) -> tuple[float, ...]:
    """:func:`component_prefix_times` on raw state fields — the hot
    form for search code that tracks states as plain tuples."""
    if store is None:
        store = default_caches().prefixes
    key = (name, next_layer, remaining, batch, idle_devices)
    hit = store.get(profile, key)
    if hit is not None:
        return hit
    prefix = [0.0]
    layer = next_layer
    while layer < num_layers:
        b = remaining if layer == next_layer else batch
        prefix.append(prefix[-1] + profile.fwd_ms(name, layer, b / idle_devices))
        layer += 1
    out = tuple(prefix)
    store.put(profile, key, out)
    return out


@dataclass(frozen=True)
class _Candidate:
    """An FFC candidate: per-ready-component counts of full-batch layers."""

    counts: tuple[int, ...]
    time_ms: float


def full_batch_candidates(
    profile: ProfileDB,
    ready: Sequence[ComponentState],
    bubble_ms: float,
    idle_devices: int,
    *,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    store: ProfileKeyedStore | None = None,
) -> tuple[list[_Candidate], int]:
    """Algorithm 2 (FFC): all maximal-prefix combinations that fit.

    Implemented iteratively over components (the paper's recursion
    unrolled): for component ``i`` every feasible prefix length
    ``k in {k0, ..., 0}`` branches the search with the remaining bubble
    time reduced accordingly.

    Returns ``(candidates, dropped)`` where ``dropped`` counts the
    partial enumerations discarded by the ``max_candidates`` cap — the
    cut keeps the longest-time partials with a deterministic tie-break
    (time, then lexicographically smallest counts), and the count is
    surfaced so truncation is never silent.
    """
    if bubble_ms < 0:
        raise FillingError("bubble time must be non-negative")
    if idle_devices <= 0:
        raise FillingError("idle device count must be positive")

    dropped = 0
    partials: list[tuple[tuple[int, ...], float]] = [((), 0.0)]
    for comp in ready:
        # Cumulative times for this component's remaining chain (cached
        # across bubbles/strategies); layers beyond the bubble's own
        # capacity can never join a candidate.
        prefix_time = component_prefix_times(profile, comp, idle_devices, store)
        n_fit = 0
        while n_fit + 1 < len(prefix_time) and prefix_time[n_fit + 1] <= bubble_ms:
            n_fit += 1

        nxt: list[tuple[tuple[int, ...], float]] = []
        for counts, used in partials:
            # Largest k that still fits after the time already used.
            k0 = 0
            while k0 < n_fit and used + prefix_time[k0 + 1] <= bubble_ms + 1e-9:
                k0 += 1
            for k in range(k0, -1, -1):
                nxt.append((counts + (k,), used + prefix_time[k]))
        # Cap the enumeration, preferring candidates that use more time;
        # ties break on the lexicographically smallest counts so the cut
        # is deterministic regardless of enumeration order.
        if len(nxt) > max_candidates:
            dropped += len(nxt) - max_candidates
            nxt.sort(key=lambda cu: (-cu[1], cu[0]))
            nxt = nxt[:max_candidates]
        partials = nxt

    return [_Candidate(counts=c, time_ms=t) for c, t in partials], dropped


def valid_partial_samples(
    batch: float,
    idle_devices: int,
    remaining: float,
    menu: Sequence[int] = VALID_LOCAL_BATCHES,
) -> list[float]:
    """``getValidNumSamples``: total sample counts allowed for a
    partial-batch layer in a bubble with ``idle_devices`` idle devices.

    The *local* batch (samples per device) must come from the empirical
    menu, and the total must not exceed the layer's remaining samples.
    """
    out = []
    for local in menu:
        total = float(local * idle_devices)
        if total <= remaining + 1e-9 and total <= batch + 1e-9:
            out.append(total)
    return out


@dataclass(frozen=True)
class BubbleFill:
    """Chosen content of one bubble."""

    bubble_index: int
    items: tuple[FillItem, ...]
    time_ms: float
    candidates_dropped: int = 0


def fill_one_bubble(
    profile: ProfileDB,
    ready: Sequence[ComponentState],
    bubble: Bubble,
    bubble_index: int,
    *,
    enable_partial_batch: bool = True,
    partial_batch_menu: Sequence[int] = VALID_LOCAL_BATCHES,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    store: ProfileKeyedStore | None = None,
) -> BubbleFill:
    """Algorithm 1: choose the best filling for one bubble.

    Returns the filling (possibly empty) *without* mutating states;
    the caller applies it via :func:`apply_fill`.
    """
    d = bubble.weight
    tb = bubble.duration
    candidates, dropped = full_batch_candidates(
        profile, ready, tb, d, max_candidates=max_candidates, store=store
    )
    if not candidates:
        return BubbleFill(bubble_index, (), 0.0, dropped)

    # Selection needs only candidate *times*; FillItems are materialised
    # once, for the winner, after the scan.  ``best_partial`` describes
    # the winning candidate's partial-batch augmentation (if any) as
    # (ready index, layer, samples, time).
    best_cand: _Candidate | None = None
    best_partial: tuple[int, int, float, float] | None = None
    best_time = -1.0
    for cand in candidates:
        base_time = cand.time_ms
        options: list[tuple[float, tuple[int, int, float, float] | None]] = [
            (base_time, None)
        ]
        # Augment with at most one partial-batch layer (line 2-6 of Alg. 1).
        if enable_partial_batch:
            for h, comp in enumerate(ready):
                layer = comp.next_layer + cand.counts[h]
                if layer >= comp.num_layers:
                    continue
                remaining = comp.layer_batch(cand.counts[h])
                budget = tb - base_time
                chosen: tuple[float, float] | None = None
                for samples in valid_partial_samples(
                    comp.batch, d, remaining, partial_batch_menu
                ):
                    t = profile.fwd_ms(comp.name, layer, samples / d)
                    if t <= budget + 1e-9:
                        if chosen is None or samples > chosen[0]:
                            chosen = (samples, t)
                if chosen is not None:
                    options.append(
                        (base_time + chosen[1], (h, layer, chosen[0], chosen[1]))
                    )
        for t, partial in options:
            if t > best_time + 1e-12:
                best_time = t
                best_cand = cand
                best_partial = partial

    if best_cand is None:  # pragma: no cover - candidates always include ()
        return BubbleFill(bubble_index, (), 0.0, dropped)
    items = _candidate_items(profile, ready, best_cand, d, bubble_index)
    if best_partial is not None:
        h, layer, samples, t = best_partial
        items.append(
            FillItem(
                component=ready[h].name,
                layer=layer,
                samples=samples,
                time_ms=t,
                bubble_index=bubble_index,
                partial=True,
            )
        )
    return BubbleFill(bubble_index, tuple(items), max(best_time, 0.0), dropped)


def _candidate_items(
    profile: ProfileDB,
    ready: Sequence[ComponentState],
    cand: _Candidate,
    idle_devices: int,
    bubble_index: int,
) -> list[FillItem]:
    items: list[FillItem] = []
    for i, comp in enumerate(ready):
        for off in range(cand.counts[i]):
            layer = comp.next_layer + off
            samples = comp.layer_batch(off)
            t = profile.fwd_ms(comp.name, layer, samples / idle_devices)
            items.append(
                FillItem(
                    component=comp.name,
                    layer=layer,
                    samples=samples,
                    time_ms=t,
                    bubble_index=bubble_index,
                    partial=samples < comp.batch,
                )
            )
    return items


def apply_fill(
    states: Mapping[str, ComponentState], fill: BubbleFill
) -> None:
    """Advance component states according to a chosen bubble filling."""
    # Full-batch advances first (items are emitted head-first per
    # component), then the partial tail.
    full_counts: dict[str, int] = {}
    partial: list[FillItem] = []
    for item in fill.items:
        state = states[item.component]
        head = state.next_layer + full_counts.get(item.component, 0)
        if item.layer == head and abs(
            item.samples - state.layer_batch(full_counts.get(item.component, 0))
        ) < 1e-9:
            full_counts[item.component] = full_counts.get(item.component, 0) + 1
        else:
            partial.append(item)
    for name, count in full_counts.items():
        states[name].consume_full(count)
    for item in partial:
        states[item.component].consume_partial(item.layer, item.samples)


class BubbleFiller:
    """Drives §5 end to end: ready-set tracking + a pluggable policy.

    Parameters
    ----------
    profile:
        Layer timing database.
    model:
        The diffusion model (provides the non-trainable DAG).
    batch:
        Full batch size ``B`` that the non-trainable part processes per
        iteration (the pipeline-group batch).
    enable_partial_batch:
        Ablation flag (Fig. 15's "partial-batch layer disabled").
    strategy:
        Name of a registered :class:`~repro.core.fill_strategies.FillStrategy`
        (``greedy`` — the paper's Algorithms 1+2; ``lookahead`` — the
        pruned cross-bubble beam/DP planner; ``lookahead_reference`` —
        its unpruned differential oracle; ``none`` — fill nothing).
    lookahead_beam:
        Beam-width cap for the lookahead strategies (None: the
        strategy's default).  The pruned ``lookahead`` runs narrower
        than this by default and widens up to it at decision points.
    fill_cache:
        Optional :class:`FillShapeCache` shared across evaluations
        (normally ``PlannerCaches.fills``); None disables shape caching.
    caches:
        The :class:`PlannerCaches` owning the prefix-time store the
        strategies consult (``caches.prefixes``); the process-wide
        default instance when ``None``.
    schedule:
        Registry name of the schedule family whose bubbles are being
        filled; joins the shape-cache context identity.
    shape_quantum:
        Quantum (ms) for rounding bubble durations when forming
        shape-cache keys.  ``0.0`` (the default) keys on exact
        durations — bit-identical to the unquantised cache.  A
        positive quantum lets timelines whose bubbles differ by less
        than half a quantum share expansion tables, beam prefixes and
        final plans: replayed plans are always re-bound to the *actual*
        bubbles, so only the cache's notion of "same shape" coarsens,
        never the arithmetic of the returned report.
    """

    def __init__(
        self,
        profile: ProfileDB,
        model: ModelSpec,
        batch: float,
        *,
        enable_partial_batch: bool = True,
        partial_batch_menu: Sequence[int] = VALID_LOCAL_BATCHES,
        max_candidates: int = DEFAULT_MAX_CANDIDATES,
        strategy: str = "greedy",
        lookahead_beam: int | None = None,
        fill_cache: "FillShapeCache | None" = None,
        caches: PlannerCaches | None = None,
        schedule: str = "onef1b",
        shape_quantum: float = 0.0,
    ):
        if batch <= 0:
            raise FillingError("batch must be positive")
        if lookahead_beam is not None and lookahead_beam < 1:
            raise FillingError("lookahead_beam must be at least 1")
        if shape_quantum < 0:
            raise FillingError("shape_quantum must be non-negative")
        self.profile = profile
        self.model = model
        self.caches = caches if caches is not None else default_caches()
        self.batch = float(batch)
        self.enable_partial_batch = enable_partial_batch
        self.partial_batch_menu = tuple(partial_batch_menu)
        self.max_candidates = max_candidates
        self.strategy = strategy
        self.lookahead_beam = lookahead_beam
        self.fill_cache = fill_cache
        #: schedule family the bubbles came from; part of the shared
        #: shape-cache identity so fills found under one family's
        #: bubble geometry are never replayed under another's
        self.schedule = schedule
        #: duration-rounding grid of the shape-cache keys (0: exact)
        self.shape_quantum = float(shape_quantum)
        self.states: dict[str, ComponentState] = {
            comp.name: ComponentState(
                name=comp.name,
                num_layers=profile.num_layers(comp.name),
                batch=self.batch,
            )
            for comp in model.non_trainable
        }

    # -- ready-set management -----------------------------------------------------

    def _done_names(
        self, states: Mapping[str, ComponentState] | None = None
    ) -> set[str]:
        states = self.states if states is None else states
        done = {n for n, s in states.items() if s.done}
        # Trainable components never gate the non-trainable DAG here:
        # their outputs belong to the *previous* iteration under
        # cross-iteration pipelining (§3.2).
        done |= {c.name for c in self.model.components.values() if c.trainable}
        return done

    def ready_components(
        self, states: Mapping[str, ComponentState] | None = None
    ) -> list[ComponentState]:
        """States of components whose dependencies are all complete."""
        states = self.states if states is None else states
        done = self._done_names(states)
        ready = []
        for comp in self.model.non_trainable:
            state = states[comp.name]
            if state.done:
                continue
            if all(dep in done for dep in comp.depends_on):
                ready.append(state)
        return ready

    # -- main drive -------------------------------------------------------------

    def fill(
        self, bubbles: Sequence[Bubble], leftover_devices: int = 1
    ) -> FillReport:
        """Fill bubbles under the configured strategy; return the report.

        ``leftover_devices`` is the data-parallel width available for
        whatever does not fit in bubbles (normally the pipeline group
        size ``D``)."""
        # Deferred import: the strategy module builds on this one.
        from .fill_strategies import get_fill_strategy

        return get_fill_strategy(self.strategy).fill(
            self, bubbles, leftover_devices
        )

    def build_report(
        self,
        bubbles: Sequence[Bubble],
        items: Sequence[FillItem],
        filled_device_time: float,
        leftover_devices: int,
        *,
        candidates_dropped: int = 0,
        per_bubble: Sequence[BubbleUtilization] = (),
        states: Mapping[str, ComponentState] | None = None,
        states_pruned: int = 0,
        beam_peak: int = 0,
    ) -> FillReport:
        """Assemble the :class:`FillReport` shared by all strategies."""
        leftover = self.leftover_ms(leftover_devices, states=states)
        return FillReport(
            items=tuple(items),
            filled_device_time_ms=filled_device_time,
            bubble_device_time_ms=sum(b.device_time for b in bubbles),
            leftover_ms=leftover,
            num_bubbles=len(bubbles),
            # repro: allow[float-equality] exact 0.0 iff no work remains
            complete=leftover == 0.0,
            strategy=self.strategy,
            candidates_dropped=candidates_dropped,
            per_bubble=tuple(per_bubble),
            states_pruned=states_pruned,
            beam_peak=beam_peak,
        )

    def leftover_ms(
        self,
        total_devices: int | None = None,
        states: Mapping[str, ComponentState] | None = None,
    ) -> float:
        """Time to run the unscheduled remainder after the flush,
        data-parallel over ``total_devices`` (default: the weight sum
        implied by the model's pipeline group is unknown here, so the
        caller usually passes it; without it we assume 1 device)."""
        d = total_devices if total_devices is not None else 1
        if d <= 0:
            raise FillingError("total_devices must be positive")
        states = self.states if states is None else states
        total = 0.0
        for comp in self.model.non_trainable:
            state = states[comp.name]
            off = 0
            while state.next_layer + off < state.num_layers:
                samples = state.layer_batch(off)
                total += self.profile.fwd_ms(
                    comp.name, state.next_layer + off, samples / d
                )
                off += 1
        return total
