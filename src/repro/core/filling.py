"""Greedy pipeline-bubble filling (§5, Algorithms 1 and 2).

Bubbles are filled chronologically.  For each bubble, Algorithm 2 (FFC)
enumerates candidates of *full-batch* layers from all currently-ready
non-trainable components — prefixes of each component's remaining layer
chain whose combined execution time fits the bubble — and Algorithm 1
then augments every candidate with at most one *partial-batch* layer
(the next unscheduled layer of some component, run on a reduced number
of samples chosen from the empirical local-batch menu
{4, 8, 12, 16, 24, 32, 48, 64, 96}), finally picking the augmented
candidate with the longest execution time that still fits.

Layers inside a bubble run data-parallel over the bubble's ``d`` idle
devices at local batch ``B/d``.  A partially-processed layer becomes the
head of its component with the leftover samples treated as a full batch
in subsequent bubbles (Fig. 12).  Components obey their dependency DAG:
a component joins the ready set only once all of its dependencies have
fully executed.  Whatever does not fit in any bubble executes after the
pipeline flush, data-parallel over all devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import FillingError
from ..models.graph import ModelSpec
from ..profiling.records import ProfileDB
from .bubbles import Bubble
from .plan import FillItem, FillReport

#: §5's empirical local-batch-size menu for partial-batch layers
VALID_LOCAL_BATCHES: tuple[int, ...] = (4, 8, 12, 16, 24, 32, 48, 64, 96)

#: safety cap on FFC candidate enumeration (the paper's models have at
#: most three simultaneously-ready components, far below this)
DEFAULT_MAX_CANDIDATES = 4096


@dataclass
class ComponentState:
    """Mutable filling progress of one non-trainable component.

    ``next_layer`` is the first not-fully-processed layer;
    ``remaining`` is how many of the batch's samples that layer still
    has to process (== full batch for a fresh layer).
    """

    name: str
    num_layers: int
    batch: float
    next_layer: int = 0
    remaining: float = 0.0

    def __post_init__(self) -> None:
        if self.remaining == 0.0:
            self.remaining = self.batch

    @property
    def done(self) -> bool:
        return self.next_layer >= self.num_layers

    def layer_batch(self, offset: int) -> float:
        """Samples still to process for the ``offset``-th remaining layer."""
        return self.remaining if offset == 0 else self.batch

    def consume_full(self, count: int) -> None:
        """Mark ``count`` leading remaining layers as fully processed."""
        if count < 0 or self.next_layer + count > self.num_layers:
            raise FillingError(
                f"{self.name}: cannot consume {count} layers at "
                f"{self.next_layer}/{self.num_layers}"
            )
        if count > 0:
            self.next_layer += count
            self.remaining = self.batch

    def consume_partial(self, layer: int, samples: float) -> None:
        """Process ``samples`` of the head layer."""
        if layer != self.next_layer:
            raise FillingError(
                f"{self.name}: partial batch must target the head layer "
                f"{self.next_layer}, got {layer}"
            )
        if samples <= 0 or samples > self.remaining + 1e-9:
            raise FillingError(
                f"{self.name}: invalid partial sample count {samples} "
                f"(remaining {self.remaining})"
            )
        self.remaining -= samples
        if self.remaining <= 1e-9:
            self.next_layer += 1
            self.remaining = self.batch


@dataclass(frozen=True)
class _Candidate:
    """An FFC candidate: per-ready-component counts of full-batch layers."""

    counts: tuple[int, ...]
    time_ms: float


def full_batch_candidates(
    profile: ProfileDB,
    ready: Sequence[ComponentState],
    bubble_ms: float,
    idle_devices: int,
    *,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> list[_Candidate]:
    """Algorithm 2 (FFC): all maximal-prefix combinations that fit.

    Implemented iteratively over components (the paper's recursion
    unrolled): for component ``i`` every feasible prefix length
    ``k in {k0, ..., 0}`` branches the search with the remaining bubble
    time reduced accordingly.
    """
    if bubble_ms < 0:
        raise FillingError("bubble time must be non-negative")
    if idle_devices <= 0:
        raise FillingError("idle device count must be positive")

    partials: list[tuple[tuple[int, ...], float]] = [((), 0.0)]
    for comp in ready:
        # Per-layer times for this component's remaining chain.
        times: list[float] = []
        t_cum = 0.0
        offset = 0
        while comp.next_layer + offset < comp.num_layers:
            b_local = comp.layer_batch(offset) / idle_devices
            t = profile.fwd_ms(comp.name, comp.next_layer + offset, b_local)
            if t_cum + t > bubble_ms:
                break
            t_cum += t
            times.append(t)
            offset += 1
        prefix_time = [0.0]
        for t in times:
            prefix_time.append(prefix_time[-1] + t)

        nxt: list[tuple[tuple[int, ...], float]] = []
        for counts, used in partials:
            # Largest k that still fits after the time already used.
            k0 = 0
            while k0 < len(times) and used + prefix_time[k0 + 1] <= bubble_ms + 1e-9:
                k0 += 1
            for k in range(k0, -1, -1):
                nxt.append((counts + (k,), used + prefix_time[k]))
        # Cap the enumeration, preferring candidates that use more time.
        if len(nxt) > max_candidates:
            nxt.sort(key=lambda cu: -cu[1])
            nxt = nxt[:max_candidates]
        partials = nxt

    return [_Candidate(counts=c, time_ms=t) for c, t in partials]


def valid_partial_samples(
    batch: float,
    idle_devices: int,
    remaining: float,
    menu: Sequence[int] = VALID_LOCAL_BATCHES,
) -> list[float]:
    """``getValidNumSamples``: total sample counts allowed for a
    partial-batch layer in a bubble with ``idle_devices`` idle devices.

    The *local* batch (samples per device) must come from the empirical
    menu, and the total must not exceed the layer's remaining samples.
    """
    out = []
    for local in menu:
        total = float(local * idle_devices)
        if total <= remaining + 1e-9 and total <= batch + 1e-9:
            out.append(total)
    return out


@dataclass(frozen=True)
class BubbleFill:
    """Chosen content of one bubble."""

    bubble_index: int
    items: tuple[FillItem, ...]
    time_ms: float


def fill_one_bubble(
    profile: ProfileDB,
    ready: Sequence[ComponentState],
    bubble: Bubble,
    bubble_index: int,
    *,
    enable_partial_batch: bool = True,
    partial_batch_menu: Sequence[int] = VALID_LOCAL_BATCHES,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> BubbleFill:
    """Algorithm 1: choose the best filling for one bubble.

    Returns the filling (possibly empty) *without* mutating states;
    the caller applies it via :func:`apply_fill`.
    """
    d = bubble.weight
    tb = bubble.duration
    candidates = full_batch_candidates(
        profile, ready, tb, d, max_candidates=max_candidates
    )
    if not candidates:
        return BubbleFill(bubble_index, (), 0.0)

    # Selection needs only candidate *times*; FillItems are materialised
    # once, for the winner, after the scan.  ``best_partial`` describes
    # the winning candidate's partial-batch augmentation (if any) as
    # (ready index, layer, samples, time).
    best_cand: _Candidate | None = None
    best_partial: tuple[int, int, float, float] | None = None
    best_time = -1.0
    for cand in candidates:
        base_time = cand.time_ms
        options: list[tuple[float, tuple[int, int, float, float] | None]] = [
            (base_time, None)
        ]
        # Augment with at most one partial-batch layer (line 2-6 of Alg. 1).
        if enable_partial_batch:
            for h, comp in enumerate(ready):
                layer = comp.next_layer + cand.counts[h]
                if layer >= comp.num_layers:
                    continue
                remaining = comp.layer_batch(cand.counts[h])
                budget = tb - base_time
                chosen: tuple[float, float] | None = None
                for samples in valid_partial_samples(
                    comp.batch, d, remaining, partial_batch_menu
                ):
                    t = profile.fwd_ms(comp.name, layer, samples / d)
                    if t <= budget + 1e-9:
                        if chosen is None or samples > chosen[0]:
                            chosen = (samples, t)
                if chosen is not None:
                    options.append(
                        (base_time + chosen[1], (h, layer, chosen[0], chosen[1]))
                    )
        for t, partial in options:
            if t > best_time + 1e-12:
                best_time = t
                best_cand = cand
                best_partial = partial

    if best_cand is None:  # pragma: no cover - candidates always include ()
        return BubbleFill(bubble_index, (), 0.0)
    items = _candidate_items(profile, ready, best_cand, d, bubble_index)
    if best_partial is not None:
        h, layer, samples, t = best_partial
        items.append(
            FillItem(
                component=ready[h].name,
                layer=layer,
                samples=samples,
                time_ms=t,
                bubble_index=bubble_index,
                partial=True,
            )
        )
    return BubbleFill(bubble_index, tuple(items), max(best_time, 0.0))


def _candidate_items(
    profile: ProfileDB,
    ready: Sequence[ComponentState],
    cand: _Candidate,
    idle_devices: int,
    bubble_index: int,
) -> list[FillItem]:
    items: list[FillItem] = []
    for i, comp in enumerate(ready):
        for off in range(cand.counts[i]):
            layer = comp.next_layer + off
            samples = comp.layer_batch(off)
            t = profile.fwd_ms(comp.name, layer, samples / idle_devices)
            items.append(
                FillItem(
                    component=comp.name,
                    layer=layer,
                    samples=samples,
                    time_ms=t,
                    bubble_index=bubble_index,
                    partial=samples < comp.batch,
                )
            )
    return items


def apply_fill(
    states: Mapping[str, ComponentState], fill: BubbleFill
) -> None:
    """Advance component states according to a chosen bubble filling."""
    # Full-batch advances first (items are emitted head-first per
    # component), then the partial tail.
    full_counts: dict[str, int] = {}
    partial: list[FillItem] = []
    for item in fill.items:
        state = states[item.component]
        head = state.next_layer + full_counts.get(item.component, 0)
        if item.layer == head and abs(
            item.samples - state.layer_batch(full_counts.get(item.component, 0))
        ) < 1e-9:
            full_counts[item.component] = full_counts.get(item.component, 0) + 1
        else:
            partial.append(item)
    for name, count in full_counts.items():
        states[name].consume_full(count)
    for item in partial:
        states[item.component].consume_partial(item.layer, item.samples)


class BubbleFiller:
    """Drives §5 end to end: ready-set tracking + per-bubble Alg. 1.

    Parameters
    ----------
    profile:
        Layer timing database.
    model:
        The diffusion model (provides the non-trainable DAG).
    batch:
        Full batch size ``B`` that the non-trainable part processes per
        iteration (the pipeline-group batch).
    enable_partial_batch:
        Ablation flag (Fig. 15's "partial-batch layer disabled").
    """

    def __init__(
        self,
        profile: ProfileDB,
        model: ModelSpec,
        batch: float,
        *,
        enable_partial_batch: bool = True,
        partial_batch_menu: Sequence[int] = VALID_LOCAL_BATCHES,
        max_candidates: int = DEFAULT_MAX_CANDIDATES,
    ):
        if batch <= 0:
            raise FillingError("batch must be positive")
        self.profile = profile
        self.model = model
        self.batch = float(batch)
        self.enable_partial_batch = enable_partial_batch
        self.partial_batch_menu = tuple(partial_batch_menu)
        self.max_candidates = max_candidates
        self.states: dict[str, ComponentState] = {
            comp.name: ComponentState(
                name=comp.name,
                num_layers=profile.num_layers(comp.name),
                batch=self.batch,
            )
            for comp in model.non_trainable
        }

    # -- ready-set management -----------------------------------------------------

    def _done_names(self) -> set[str]:
        done = {n for n, s in self.states.items() if s.done}
        # Trainable components never gate the non-trainable DAG here:
        # their outputs belong to the *previous* iteration under
        # cross-iteration pipelining (§3.2).
        done |= {c.name for c in self.model.components.values() if c.trainable}
        return done

    def ready_components(self) -> list[ComponentState]:
        """States of components whose dependencies are all complete."""
        done = self._done_names()
        ready = []
        for comp in self.model.non_trainable:
            state = self.states[comp.name]
            if state.done:
                continue
            if all(dep in done for dep in comp.depends_on):
                ready.append(state)
        return ready

    # -- main drive -------------------------------------------------------------

    def fill(
        self, bubbles: Sequence[Bubble], leftover_devices: int = 1
    ) -> FillReport:
        """Fill bubbles chronologically; return the complete report.

        ``leftover_devices`` is the data-parallel width available for
        whatever does not fit in bubbles (normally the pipeline group
        size ``D``)."""
        ordered = sorted(enumerate(bubbles), key=lambda ib: ib[1].start)
        all_items: list[FillItem] = []
        filled_device_time = 0.0
        for index, bubble in ordered:
            ready = self.ready_components()
            if not ready:
                if all(s.done for s in self.states.values()):
                    break
                continue
            fill = fill_one_bubble(
                self.profile,
                ready,
                bubble,
                index,
                enable_partial_batch=self.enable_partial_batch,
                partial_batch_menu=self.partial_batch_menu,
                max_candidates=self.max_candidates,
            )
            if not fill.items:
                continue
            apply_fill(self.states, fill)
            all_items.extend(fill.items)
            filled_device_time += fill.time_ms * bubble.weight

        leftover = self.leftover_ms(leftover_devices)
        return FillReport(
            items=tuple(all_items),
            filled_device_time_ms=filled_device_time,
            bubble_device_time_ms=sum(b.device_time for b in bubbles),
            leftover_ms=leftover,
            num_bubbles=len(bubbles),
            complete=leftover == 0.0,
        )

    def leftover_ms(self, total_devices: int | None = None) -> float:
        """Time to run the unscheduled remainder after the flush,
        data-parallel over ``total_devices`` (default: the weight sum
        implied by the model's pipeline group is unknown here, so the
        caller usually passes it; without it we assume 1 device)."""
        d = total_devices if total_devices is not None else 1
        if d <= 0:
            raise FillingError("total_devices must be positive")
        total = 0.0
        for comp in self.model.non_trainable:
            state = self.states[comp.name]
            off = 0
            while state.next_layer + off < state.num_layers:
                samples = state.layer_batch(off)
                total += self.profile.fwd_ms(
                    comp.name, state.next_layer + off, samples / d
                )
                off += 1
        return total
