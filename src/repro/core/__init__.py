"""DiffusionPipe's core: partitioning, bubble filling, planning."""

from .bubbles import (
    DEFAULT_MIN_BUBBLE_MS,
    Bubble,
    extract_bubbles,
    extract_bubbles_reference,
    longest_bubble,
    total_bubble_device_time,
)
from .caches import (
    CacheStats,
    PlannerCaches,
    default_caches,
)
from .cross_iteration import (
    IterationEstimate,
    compose_iteration,
    packed_fill_strict_credit,
    strict_idle_in_bubbles,
)
from .elastic import (
    ElasticEvent,
    ElasticSession,
    apply_event,
)
from .fill_strategies import (
    FILL_STRATEGIES,
    FillStrategy,
    fill_strategy_names,
    get_fill_strategy,
    register_fill_strategy,
)
from .filling import (
    VALID_LOCAL_BATCHES,
    BubbleFiller,
    ComponentState,
    FillShapeCache,
    component_prefix_times,
    fill_one_bubble,
    full_batch_candidates,
    valid_partial_samples,
)
from .lru import LruStore, ProfileKeyedStore, StoreStats
from .instructions import Instruction, Op, format_streams, lower_timeline
from .partition import (
    PartitionContext,
    StageCosts,
    partition_backbone,
    pareto_insert,
)
from .partition_cdm import (
    CDM_COMM_SCALE,
    CDMPartitionContext,
    group_backbones,
    partition_cdm,
)
from .plan import (
    BubbleUtilization,
    ExecutionPlan,
    FillItem,
    FillReport,
    MemoryReport,
    PartitionPlan,
    StageAssignment,
)
from .planner import (
    DiffusionPipePlanner,
    EvaluatedConfig,
    PlannerOptions,
)

__all__ = [
    "DEFAULT_MIN_BUBBLE_MS",
    "Bubble",
    "extract_bubbles",
    "extract_bubbles_reference",
    "longest_bubble",
    "total_bubble_device_time",
    "IterationEstimate",
    "compose_iteration",
    "packed_fill_strict_credit",
    "strict_idle_in_bubbles",
    "FILL_STRATEGIES",
    "FillStrategy",
    "fill_strategy_names",
    "get_fill_strategy",
    "register_fill_strategy",
    "VALID_LOCAL_BATCHES",
    "BubbleFiller",
    "BubbleUtilization",
    "CacheStats",
    "ComponentState",
    "FillShapeCache",
    "LruStore",
    "ProfileKeyedStore",
    "StoreStats",
    "component_prefix_times",
    "default_caches",
    "fill_one_bubble",
    "full_batch_candidates",
    "valid_partial_samples",
    "Instruction",
    "Op",
    "format_streams",
    "lower_timeline",
    "PartitionContext",
    "StageCosts",
    "partition_backbone",
    "pareto_insert",
    "CDM_COMM_SCALE",
    "CDMPartitionContext",
    "group_backbones",
    "partition_cdm",
    "ExecutionPlan",
    "FillItem",
    "FillReport",
    "MemoryReport",
    "PartitionPlan",
    "StageAssignment",
    "DiffusionPipePlanner",
    "ElasticEvent",
    "ElasticSession",
    "EvaluatedConfig",
    "PlannerCaches",
    "PlannerOptions",
    "apply_event",
]
