"""The DiffusionPipe planner: Fig. 7's front-end, steps 2-5.

Given a model, a cluster and a global batch size, the planner sweeps the
pipeline hyper-parameters of Table 3 — stage count ``S``, micro-batch
count ``M`` and pipeline-group size ``D`` (world = D x data-parallel
degree) — and for each feasible combination:

1. runs the dynamic-programming partitioner (§4) for the backbone(s);
2. builds the configured schedule family — FIFO-1F1B by default,
   bidirectional for cascaded models, or any other registered
   :class:`~repro.schedule.families.ScheduleFamily` (``gpipe``,
   ``interleaved``, ``zerobubble``) via ``PlannerOptions.schedule`` —
   and simulates it on the cluster model;
3. extracts pipeline bubbles and fills them with the non-trainable
   part under cross-iteration pipelining (§5, §3.2);
4. estimates the steady-state iteration time and checks device memory;

and finally returns the configuration with the highest throughput.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Iterator, Sequence

from ..cluster.collectives import CollectiveModel, CommCosts
from ..cluster.topology import ClusterSpec
from ..errors import ConfigurationError, PartitionError
from ..models.graph import ModelSpec
from ..profiling.profiler import Profiler
from ..profiling.records import ProfileDB
from ..schedule import get_family, schedule_family_names
from ..schedule.simulator import simulate
from ..schedule.stages import StageExec
from ..schedule.timeline import Timeline
from .bubbles import DEFAULT_MIN_BUBBLE_MS, extract_bubbles
from .caches import CacheStats, PlannerCaches, default_caches
from .cross_iteration import compose_iteration
from .fill_strategies import FILL_STRATEGIES, fill_strategy_names
from .filling import VALID_LOCAL_BATCHES, BubbleFiller, FillShapeCache
from .partition import PartitionContext, partition_backbone
from .partition_cdm import CDMPartitionContext, partition_cdm
from .plan import ExecutionPlan, FillReport, PartitionPlan, StageAssignment

__all__ = [
    "PlannerOptions",
    "EvaluatedConfig",
    "PlannerCaches",
    "CacheStats",
    "FillShapeCache",
    "default_caches",
    "DiffusionPipePlanner",
]


@dataclass(frozen=True)
class PlannerOptions:
    """Knobs of the planner search and the bubble-filling ablations."""

    max_stages: int = 4
    micro_batch_counts: tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16)
    group_sizes: tuple[int, ...] | None = None   # None: divisors of world
    enable_bubble_filling: bool = True
    enable_partial_batch: bool = True
    #: registry name of the bubble-filling policy (``greedy`` — the
    #: paper's Algorithms 1+2; ``lookahead`` — cross-bubble DP/beam;
    #: ``lookahead_reference`` — its unpruned oracle; ``none`` —
    #: extract bubbles but fill nothing)
    fill_strategy: str = "greedy"
    #: registry name of the pipeline schedule family (see README
    #: "Schedule families").  ``"auto"`` resolves per model: ``onef1b``
    #: for single-backbone models, ``bidirectional`` for cascaded ones.
    #: An explicit name that cannot serve the model (a single-backbone
    #: family on a cascaded model, or vice versa) raises at planner
    #: construction.
    schedule: str = "auto"
    #: chunks per device of the ``interleaved`` family (Megatron's
    #: ``v``); ignored by every other family
    virtual_stages: int = 2
    #: beam-width cap of the lookahead fill strategies; the production
    #: ``lookahead`` runs narrower by default and widens up to this at
    #: decision points (see README "Bubble filling")
    lookahead_beam: int = 64
    min_bubble_ms: float = DEFAULT_MIN_BUBBLE_MS
    partial_batch_menu: tuple[int, ...] = VALID_LOCAL_BATCHES
    heterogeneous_replication: bool = False
    keep_timeline: bool = False
    check_memory: bool = True
    #: stage-boundary granularity for the (quadratic) CDM partitioner;
    #: 1 = exact, 2 halves the transition space for long backbones
    cdm_cut_step: int = 2
    #: DP table-build engine: ``"array"`` — the vectorized numpy
    #: kernels of :mod:`repro.core.partition_kernels` (bit-identical
    #: tables, the default) — or ``"reference"`` — the pure-Python
    #: folds they are differentially tested against (see README
    #: "Array-kernel DPs").  Part of every partition cache key, so
    #: tables built by different engines never alias.
    dp_kernel: str = "array"
    #: quantum (ms) for rounding bubble durations in the lookahead
    #: fill's shape-cache keys; 0.0 (the default) keys on exact shapes
    #: and is bit-identical to not caching by shape at all.  A coarse
    #: quantum trades exactness of the *cache key* (never of the
    #: replayed plan's arithmetic) for warm hits across near-identical
    #: timelines.
    fill_shape_quantum: float = 0.0

    def __post_init__(self) -> None:
        if self.max_stages < 2:
            raise ConfigurationError("max_stages must be at least 2")
        if not self.micro_batch_counts:
            raise ConfigurationError("micro_batch_counts must be non-empty")
        if self.fill_strategy not in FILL_STRATEGIES:
            raise ConfigurationError(
                f"unknown fill strategy {self.fill_strategy!r}; "
                f"registered: {fill_strategy_names()}"
            )
        if self.lookahead_beam < 1:
            raise ConfigurationError("lookahead_beam must be at least 1")
        from ..schedule import SCHEDULE_FAMILIES

        if self.schedule != "auto" and self.schedule not in SCHEDULE_FAMILIES:
            raise ConfigurationError(
                f"unknown schedule family {self.schedule!r}; "
                f"registered: {('auto',) + schedule_family_names()}"
            )
        if self.virtual_stages < 2:
            raise ConfigurationError(
                "virtual_stages must be at least 2 (one chunk per device "
                "is plain 1F1B — use schedule='onef1b')"
            )
        if self.dp_kernel not in ("array", "reference"):
            raise ConfigurationError(
                f"unknown dp_kernel {self.dp_kernel!r}; "
                "choose 'array' or 'reference'"
            )
        if self.fill_shape_quantum < 0:
            raise ConfigurationError(
                "fill_shape_quantum must be non-negative"
            )


@dataclass(frozen=True)
class EvaluatedConfig:
    """An :class:`ExecutionPlan` plus optional retained timeline(s)."""

    plan: ExecutionPlan
    timeline: Timeline | None = None
    timeline_sc: Timeline | None = None


class DiffusionPipePlanner:
    """Front-end entry point.

    Parameters
    ----------
    model / cluster:
        The training job.
    profile:
        Pre-computed :class:`ProfileDB`; profiled on the fly when
        omitted (Fig. 7 step 1).
    options:
        Search and ablation knobs.
    caches:
        The :class:`PlannerCaches` this planner reads and writes.  When
        ``None`` the process-wide :func:`default_caches` instance is
        used, so independent planners share warm DP tables, prefix
        arrays and timelines exactly as the old module-level caches
        provided; pass an explicit instance for full isolation (tests,
        services with per-tenant stores).
    """

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        profile: ProfileDB | None = None,
        options: PlannerOptions | None = None,
        caches: PlannerCaches | None = None,
    ):
        self.model = model
        self.cluster = cluster
        self.profile = profile or Profiler(cluster).profile(model)
        self.options = options or PlannerOptions()
        self.collectives = CollectiveModel(cluster)
        self.caches = caches if caches is not None else default_caches()
        if len(model.backbone_names) > 2:
            raise ConfigurationError(
                "the planner handles one or two backbones; group larger "
                "cascades with repro.core.partition_cdm.group_backbones first"
            )
        #: resolved schedule family name: ``options.schedule`` with
        #: ``"auto"`` mapped per model shape.
        self.schedule = self._resolve_schedule()
        self._family = get_family(self.schedule)
        if self._family.chunked and self.options.heterogeneous_replication:
            raise ConfigurationError(
                "the 'interleaved' family replicates every chunk of a "
                "device identically; heterogeneous replication is not "
                "supported with chunked schedules"
            )
        if self._family.chunked and self.cluster.speed_factors:
            raise ConfigurationError(
                "chunked schedules partition at chunk granularity on a "
                "virtual device budget, which has no per-device windows "
                "to scale; per-device speed factors are not supported "
                "with chunked schedules"
            )

    def _resolve_schedule(self) -> str:
        name = self.options.schedule
        cascaded = len(self.model.backbone_names) == 2
        if name == "auto":
            return "bidirectional" if cascaded else "onef1b"
        family = get_family(name)
        if family.cascaded and not cascaded:
            raise ConfigurationError(
                f"schedule family {name!r} pipelines two backbones; "
                f"model {self.model.name!r} has one (use 'auto' or a "
                "single-backbone family)"
            )
        if cascaded and not family.cascaded:
            raise ConfigurationError(
                f"schedule family {name!r} builds a single backbone; "
                f"cascaded model {self.model.name!r} needs 'bidirectional' "
                "(or 'auto')"
            )
        return name

    # -- search space -------------------------------------------------------------

    def candidate_configs(self, global_batch: float) -> Iterator[tuple[int, int, int]]:
        """Yield feasible (D, S, M) combinations for a global batch.

        Divisibility is tested exactly: the batch enters as a
        :class:`~fractions.Fraction` and the per-group quotient stays
        rational, so binary-float rounding (``global_batch / dp`` is the
        only inexact step of the float formulation) can neither reject a
        feasible split nor admit one whose micro-batches are fractional.
        """
        world = self.cluster.world_size
        opts = self.options
        group_sizes = opts.group_sizes or tuple(
            d for d in range(2, world + 1) if world % d == 0
        )
        # Per-stage replica counts apply to both pipeline flavours: the
        # single-backbone (1F1B) DP and the bidirectional CDM DP both
        # implement the general recursion (Eqns. 7-9), so non-divisible
        # (S, D) combos are admissible for cascaded models too.
        het = opts.heterogeneous_replication
        gb = Fraction(global_batch)
        for D in group_sizes:
            if D < 2 or D > world or world % D != 0:
                continue
            dp = world // D
            if gb % dp:
                continue
            batch_per_group = gb / dp
            for S in range(2, min(opts.max_stages, D) + 1):
                if not het and D % S != 0:
                    continue
                # Per-replica batch floor: homogeneous replication pins
                # r = D/S, so the micro-batch must cover it; the
                # heterogeneous DPs pick per-stage replicas themselves
                # (capped at floor(micro_batch)), so any micro-batch of
                # at least one sample is admissible.
                r = 1 if het else max(D // S, 1)
                for M in opts.micro_batch_counts:
                    if batch_per_group % M:
                        continue
                    if batch_per_group / (M * r) < 1:
                        continue
                    yield (D, S, M)

    # -- communication constants ----------------------------------------------------

    def _p2p_costs(self, group_size: int) -> CommCosts:
        """R/L of inter-stage transfers for a pipeline group.

        Groups that fit in a machine use NVSwitch, larger groups EFA.
        """
        key = ("p2p", self.cluster, group_size)
        costs = self.caches.comm.get(key)
        if costs is None:
            link = self.cluster.group_link(list(range(group_size)))
            costs = CommCosts(bandwidth=link.bandwidth, latency=link.latency)
            self.caches.comm.put(key, costs)
        return costs

    def _allreduce_costs(self, group_size: int, stage_replicas: int) -> CommCosts:
        """R/L of a stage's gradient all-reduce.

        A stage's sync group spans its ``r`` replicas inside the group
        and its copies across the ``world/D`` data-parallel groups
        (Fig. 8's layout: groups are contiguous rank blocks).
        """
        key = ("ar", self.cluster, group_size, stage_replicas)
        costs = self.caches.comm.get(key)
        if costs is None:
            dp = self.cluster.world_size // group_size
            ranks = [
                g * group_size + j
                for g in range(dp)
                for j in range(stage_replicas)
            ]
            costs = self.collectives.allreduce_costs(ranks)
            self.caches.comm.put(key, costs)
        return costs

    def _group_speed_scales(self, group_size: int) -> tuple[float, ...] | None:
        """Per-position compute scales of a pipeline group's device chain.

        Position ``j`` of a group replicates on ranks ``{g * D + j}``
        across the ``world/D`` data-parallel groups (Fig. 8's layout:
        groups are contiguous rank blocks), and a stage's step time is
        set by its slowest replica, so the fold across groups is the
        bottleneck (minimum).  Returns ``None`` for clusters without
        speed overrides, keeping every partition DP and stage-exec
        build on the unscaled code path byte-for-byte.
        """
        cluster = self.cluster
        if not cluster.speed_factors:
            return None
        D = group_size
        dp = cluster.world_size // D
        return tuple(
            min(cluster.speed_factor(g * D + j) for g in range(dp))
            for j in range(D)
        )

    # -- evaluation of one configuration ----------------------------------------------

    def evaluate(
        self, global_batch: float, group_size: int, num_stages: int, num_micro: int
    ) -> EvaluatedConfig | None:
        """Fully evaluate one (D, S, M) configuration.

        Returns None when no feasible partition exists or the plan does
        not fit in memory.
        """
        D, S, M = group_size, num_stages, num_micro
        world = self.cluster.world_size
        if world % D != 0:
            raise ConfigurationError(f"group size {D} !| world {world}")
        dp = world // D
        # Float quotient: the cost model (profiling interpolation,
        # schedule times, cache keys) runs on floats throughout, so the
        # plan is evaluated at the nearest-float of the exact per-group
        # batch.  Divisibility of the *true* rational split is certified
        # exactly by candidate_configs; past 2^53 samples the value here
        # can round off that certified integer, which perturbs modeled
        # costs by at most 1 ulp but never feasibility decisions.
        batch_per_group = global_batch / dp

        try:
            partition = self._partition(batch_per_group, D, S, M)
        except PartitionError:
            return None

        memory = None
        if self.options.check_memory:
            # Deferred import: repro.memory depends on repro.core.plan.
            from ..memory.estimator import pipeline_memory_report

            memory = pipeline_memory_report(
                self.model,
                partition,
                # The OOM bound is the smallest device: a plan either
                # fits everywhere or it does not fit at all.
                capacity_bytes=self.cluster.min_memory_bytes(),
                schedule=self.schedule,
                virtual_stages=(
                    self.options.virtual_stages if self._family.chunked else 1
                ),
            )
            if not memory.fits:
                return None

        nt_total = self._nt_serial_ms(batch_per_group, D)

        if self.model.self_conditioning and not partition.is_bidirectional:
            ev_plain = self._simulate_and_fill(
                partition, batch_per_group, sc=False, nt_total=nt_total
            )
            ev_sc = self._simulate_and_fill(
                partition, batch_per_group, sc=True, nt_total=nt_total
            )
            p = self.model.self_conditioning_prob
            iteration = (1 - p) * ev_plain[0].iteration_ms + p * ev_sc[0].iteration_ms
            ratio_unfilled = (
                (1 - p) * ev_plain[0].bubble_ratio_unfilled
                + p * ev_sc[0].bubble_ratio_unfilled
            )
            ratio_filled = (
                (1 - p) * ev_plain[0].bubble_ratio_filled
                + p * ev_sc[0].bubble_ratio_filled
            )
            pipeline_ms = (1 - p) * ev_plain[0].pipeline_ms + p * ev_sc[0].pipeline_ms
            leftover = (1 - p) * ev_plain[0].leftover_ms + p * ev_sc[0].leftover_ms
            fill = ev_plain[1]
            timeline, timeline_sc = ev_plain[2], ev_sc[2]
        else:
            est, fill, timeline = self._simulate_and_fill(
                partition, batch_per_group, sc=False, nt_total=nt_total
            )
            iteration = est.iteration_ms
            ratio_unfilled = est.bubble_ratio_unfilled
            ratio_filled = est.bubble_ratio_filled
            pipeline_ms = est.pipeline_ms
            leftover = est.leftover_ms
            timeline_sc = None

        samples_per_iter = global_batch * (2 if partition.is_bidirectional else 1)
        throughput = samples_per_iter / iteration * 1e3  # samples/s

        plan = ExecutionPlan(
            model_name=self.model.name,
            partition=partition,
            schedule=self.schedule,
            data_parallel_degree=dp,
            global_batch=global_batch,
            pipeline_ms=pipeline_ms,
            leftover_ms=leftover,
            iteration_ms=iteration,
            throughput=throughput,
            bubble_ratio_unfilled=ratio_unfilled,
            bubble_ratio_filled=ratio_filled,
            fill=fill,
            memory=memory,
        )
        return EvaluatedConfig(
            plan=plan,
            timeline=timeline if self.options.keep_timeline else None,
            timeline_sc=timeline_sc if self.options.keep_timeline else None,
        )

    # -- planning ----------------------------------------------------------------------

    def candidate_plans(self, global_batch: float) -> list[EvaluatedConfig]:
        """Evaluate every feasible configuration."""
        out = []
        for D, S, M in self.candidate_configs(global_batch):
            ev = self.evaluate(global_batch, D, S, M)
            if ev is not None:
                out.append(ev)
        return out

    def plan(self, global_batch: float) -> EvaluatedConfig:
        """Pick the highest-throughput configuration (Fig. 7 step 5)."""
        candidates = self.candidate_plans(global_batch)
        if not candidates:
            raise ConfigurationError(
                f"no feasible configuration for global batch {global_batch} "
                f"on {self.cluster.world_size} devices"
            )
        return max(candidates, key=lambda ev: ev.plan.throughput)

    # -- internals -----------------------------------------------------------------------

    @property
    def _partition_mode(self) -> tuple:
        """Partition-relevant identity of the schedule family.

        Families with identical partition semantics (onef1b, gpipe,
        bidirectional; zerobubble under self-conditioning, where the
        B/W pricing refinement is disabled) share partition cache
        entries; only chunked granularity and zero-bubble pricing
        change the DP's inputs.
        """
        if self._family.chunked:
            return ("chunked", self.options.virtual_stages)
        if self._family.splits_backward and not self.model.self_conditioning:
            return ("zerobubble",)
        return ("default",)

    def _partition(
        self, batch_per_group: float, D: int, S: int, M: int
    ) -> PartitionPlan:
        key = (
            # Weak profile identity (see _simulate_and_fill): planners
            # sharing one PlannerCaches across re-profiled models must
            # not reuse stale partitions.
            weakref.ref(self.profile),
            self.cluster,
            batch_per_group,
            D,
            S,
            M,
            self.model.self_conditioning,
            self.model.self_conditioning_prob,
            self.model.backbone_names,
            self.options.heterogeneous_replication,
            self.options.cdm_cut_step,
            # Both engines produce bit-identical plans, but the knob
            # keys the entry anyway: a mismatch would otherwise be
            # invisible, and the differential suite relies on the two
            # engines never aliasing each other's tables or plans.
            self.options.dp_kernel,
            self._partition_mode,
        )
        partitions = self.caches.partition
        hit = partitions.get(key)
        if hit is not None:
            if isinstance(hit, PartitionError):
                # Raise a fresh instance: re-raising the cached one would
                # keep appending propagation frames to its __traceback__,
                # pinning frames for the cache's lifetime.
                raise PartitionError(*hit.args)
            return hit
        try:
            plan = self._partition_uncached(batch_per_group, D, S, M)
        except PartitionError as err:
            # Store a stripped copy: caching the live exception would pin
            # its __traceback__ (and every frame's locals) for the
            # cache's lifetime.
            partitions.put(key, PartitionError(*err.args))
            raise
        partitions.put(key, plan)
        return plan

    def _partition_uncached(
        self, batch_per_group: float, D: int, S: int, M: int
    ) -> PartitionPlan:
        p2p = self._p2p_costs(D)
        # Per-replica-count sync model: the DPs resolve every candidate
        # stage's all-reduce constants through this callback, so the Y
        # term prices Eqn. 4 faithfully for each replica count instead
        # of reusing one representative pair.  The key names the
        # callback's constants — (cluster, D) determine the sync group
        # of every r — standing in for the (unhashable) callable in the
        # per-profile DP memo keys.
        ar_by_r = lambda r: self._allreduce_costs(D, r)  # noqa: E731
        # Content-based resolver identity: the key names the constants
        # the callback can actually resolve (one CommCosts per replica
        # count) rather than the cluster object that produced them.  An
        # elastic replan on a different cluster identity (a machine
        # left and rejoined) then warm-hits every DP table whose sync
        # constants are genuinely unchanged, instead of missing on an
        # incidental cluster field.
        ar_key = ("ar-resolved", D, tuple(ar_by_r(r) for r in range(1, D + 1)))
        # Flat-pair fallback, unread while the resolver is set: every
        # cost path resolves through allreduce_for.  Filled with the
        # uniform stage's constants so direct readers of the context see
        # a representative value.
        ar = ar_by_r(max(D // S, 1))
        speed_scales = self._group_speed_scales(D)
        names = self.model.backbone_names
        if len(names) == 1:
            mode = self._partition_mode
            ctx = PartitionContext(
                profile=self.profile,
                component=names[0],
                batch_per_group=batch_per_group,
                num_micro_batches=M,
                p2p=p2p,
                allreduce=ar,
                self_conditioning=self.model.self_conditioning,
                self_conditioning_prob=self.model.self_conditioning_prob,
                allreduce_by_r=ar_by_r,
                allreduce_key=ar_key,
                pricing="zerobubble" if mode[0] == "zerobubble" else "default",
                speed_scales=speed_scales,
            )
            if self._family.chunked:
                # Interleaved virtual stages partition at CHUNK
                # granularity: the layer chain is cut into v*S
                # consecutive chunks and chunk c lands on device
                # c mod S, so each device hosts v non-contiguous
                # chunks.  Running the DP with v*S stages on a virtual
                # v*D budget keeps the homogeneous replica count at
                # r = D/S per chunk while p2p and all-reduce constants
                # stay priced from the real group (closures above).
                # The DP's ramp coefficient then over-counts (2vS-2 vs
                # the schedule's shorter per-chunk ramps), which only
                # biases *which* cut it prefers — final throughput
                # always comes from simulating the real chunk chain.
                v = self.options.virtual_stages
                plan = partition_backbone(
                    ctx, S * v, D * v, heterogeneous=False,
                    caches=self.caches,
                    dp_kernel=self.options.dp_kernel,
                )
                return replace(plan, group_size=D)
            return partition_backbone(
                ctx,
                S,
                D,
                heterogeneous=self.options.heterogeneous_replication,
                caches=self.caches,
                dp_kernel=self.options.dp_kernel,
            )
        ctx_down = PartitionContext(
            profile=self.profile,
            component=names[0],
            batch_per_group=batch_per_group,
            num_micro_batches=M,
            p2p=p2p,
            allreduce=ar,
            allreduce_by_r=ar_by_r,
            allreduce_key=ar_key,
            speed_scales=speed_scales,
        )
        ctx_up = replace(ctx_down, component=names[1])
        return partition_cdm(
            CDMPartitionContext(down=ctx_down, up=ctx_up),
            S,
            D,
            cut_step=self.options.cdm_cut_step,
            heterogeneous=self.options.heterogeneous_replication,
            caches=self.caches,
            dp_kernel=self.options.dp_kernel,
        )

    def _stage_execs(
        self,
        chain: Sequence[StageAssignment],
        micro_batch: float,
        sc: bool,
        group_size: int | None = None,
        reverse_windows: bool = False,
    ) -> list[StageExec]:
        prof = self.profile
        # With heterogeneous replication the stages' replica counts
        # differ, so the pipeline-group size must come from the
        # partition (or the chain's device total) — multiplying the
        # first stage's count by the stage count only works for the
        # homogeneous case.
        if group_size is None:
            group_size = sum(st.replicas for st in chain)
        p2p = self._p2p_costs(group_size)
        scales = self._group_speed_scales(group_size)
        # Device windows along the chain: stage i occupies the devices
        # where stage i-1's replicas end, matching the partition DP's
        # placement convention.  The up chain of the bidirectional
        # schedule is traversed in its own stage order but placed in
        # reverse chain order (up stage j shares position S-1-j's
        # devices), so its windows are suffix sums.
        offsets = [0]
        for st in chain:
            offsets.append(offsets[-1] + st.replicas)
        execs = []
        for i, st in enumerate(chain):
            local = micro_batch / st.replicas
            fwd = prof.stage_fwd_ms(st.component, st.lo, st.hi, local)
            bwd = prof.stage_bwd_ms(st.component, st.lo, st.hi, local)
            if i < len(chain) - 1:
                nbytes = prof.boundary_bytes(st.component, st.hi - 1, local)
                send_fwd = nbytes / p2p.bandwidth + p2p.latency
                send_bwd = send_fwd
            else:
                send_fwd = send_bwd = 0.0
            grad = prof.stage_grad_bytes(st.component, st.lo, st.hi)
            ar = self._allreduce_costs(group_size, st.replicas)
            sync = grad / ar.bandwidth + ar.latency if grad > 0 else 0.0
            # B/W split carried on every exec (only the split-backward
            # family reads it): W from the profile's measured/calibrated
            # grad-weight share, B the exact remainder.
            bwd_w = prof.stage_bwd_w_ms(st.component, st.lo, st.hi, local)
            bwd_b = prof.stage_bwd_b_ms(st.component, st.lo, st.hi, local)
            if scales is not None:
                # The stage runs at its window's bottleneck speed — the
                # same min-over-window the partition DP priced — so the
                # simulated timeline and the DP's T0 agree on slowdowns.
                # Comm terms (send/sync) are never compute-scaled.
                pd = (
                    offsets[-1] - offsets[i + 1]
                    if reverse_windows
                    else offsets[i]
                )
                w = min(scales[pd : pd + st.replicas])
                fwd /= w
                bwd /= w
                bwd_w /= w
                bwd_b /= w
            execs.append(
                StageExec(
                    index=i,
                    fwd_ms=fwd,
                    bwd_ms=bwd,
                    bwd_b_ms=bwd_b,
                    bwd_w_ms=bwd_w,
                    sc_fwd_ms=fwd if sc else None,
                    send_fwd_ms=send_fwd,
                    send_bwd_ms=send_bwd,
                    sync_ms=sync,
                    replicas=st.replicas,
                    layer_range=(st.component, st.lo, st.hi),
                )
            )
        return execs

    def _feedback_ms(
        self,
        chain: Sequence[StageAssignment],
        micro_batch: float,
        group_size: int | None = None,
    ) -> float:
        last = chain[-1]
        local = micro_batch / last.replicas
        nbytes = self.profile.boundary_bytes(last.component, last.hi - 1, local)
        if group_size is None:
            group_size = sum(st.replicas for st in chain)
        p2p = self._p2p_costs(group_size)
        return nbytes / p2p.bandwidth + p2p.latency

    def _nt_serial_ms(self, batch_per_group: float, D: int) -> float:
        """Serial (pre-pipeline) execution time of the whole NT part,
        data-parallel across the pipeline group."""
        total = 0.0
        for comp in self.model.non_trainable:
            total += self.profile.component_fwd_ms(comp.name, batch_per_group / D)
        return total

    def _simulate_and_fill(
        self,
        partition: PartitionPlan,
        batch_per_group: float,
        *,
        sc: bool,
        nt_total: float,
    ):
        opts = self.options
        eval_key = (
            partition.down,
            partition.up,
            partition.num_micro_batches,
            partition.group_size,
            batch_per_group,
            sc,
            nt_total,
            # The full ClusterSpec (a frozen value type), matching the
            # partition/comm keys: same-world-size planners on different
            # interconnects must not alias each other's timelines.
            self.cluster,
            # Identity of the inputs the cached result was computed
            # from: stage times come from the profile, filler layers
            # from the model.  The per-instance predecessor of this
            # memo could never alias across profiles; the shared one
            # must not either (ModelSpec is unhashable, so its name
            # stands in — profiles are per-model in practice).  A weak
            # reference, so cache keys never pin a retired ProfileDB
            # (and with it the per-profile DP tables that are meant to
            # die with the profile); a dead ref only ever equals
            # itself, so stale entries are inert until evicted.
            weakref.ref(self.profile),
            self.model.name,
            # Filling knobs: planners sharing one PlannerCaches (e.g.
            # the Fig. 15 ablation variants) differ only in these, so
            # they are part of the key rather than a sharing hazard.
            opts.enable_bubble_filling,
            opts.enable_partial_batch,
            opts.fill_strategy,
            opts.lookahead_beam,
            opts.min_bubble_ms,
            opts.partial_batch_menu,
            opts.fill_shape_quantum,
            # The schedule family the timeline is built under; the
            # chunk granularity is already encoded in partition.down.
            self.schedule,
        )
        evals = self.caches.evals
        hit = evals.get(eval_key)
        if hit is not None:
            return hit
        result = self._simulate_and_fill_uncached(
            partition, batch_per_group, sc=sc, nt_total=nt_total
        )
        evals.put(eval_key, result)
        return result

    def _simulate_and_fill_uncached(
        self,
        partition: PartitionPlan,
        batch_per_group: float,
        *,
        sc: bool,
        nt_total: float,
    ):
        micro = partition.micro_batch
        M = partition.num_micro_batches
        S = partition.num_stages
        D = partition.group_size
        family = self._family
        if partition.is_bidirectional:
            # Chain position i hosts the down chain's stage i AND the up
            # chain's stage S-1-i on the same devices, so the simulator's
            # per-device weight must reflect both (they agree by
            # construction — the partitioner assigns one replica count
            # per position — but deriving from one chain only would go
            # silently wrong if that ever changed).
            weights = {
                i: max(
                    partition.down[i].replicas,
                    partition.up[S - 1 - i].replicas,
                )
                for i in range(S)
            }
            down = self._stage_execs(partition.down, micro, sc=False, group_size=D)
            up = self._stage_execs(
                partition.up, micro, sc=False, group_size=D,
                reverse_windows=True,
            )
            # The up-chain stage execs (and therefore their replica
            # counts) are part of the key, alongside the two-sided
            # device weights.
            tl_key = (
                self.schedule,
                tuple(down),
                tuple(up),
                M,
                S,
                tuple(sorted(weights.items())),
            )
            timeline = self.caches.timelines.get(tl_key)
            if timeline is None:
                tasks = family.build(down, M, up=up)
                timeline = simulate(tasks, S, weights)
                self.caches.timelines.put(tl_key, timeline)
        else:
            if family.chunked:
                # partition.down is the chunk chain: v chunks per
                # device-chain position, all replicating identically,
                # so the simulator sees S/v physical positions.
                positions = S // self.options.virtual_stages
            else:
                positions = S
            weights = {
                i: partition.down[i].replicas for i in range(positions)
            }
            stages = self._stage_execs(partition.down, micro, sc=sc, group_size=D)
            feedback = (
                self._feedback_ms(partition.down, micro, group_size=D)
                if sc
                else 0.0
            )
            tl_key = (
                self.schedule,
                tuple(stages),
                M,
                sc,
                feedback,
                S,
                tuple(sorted(weights.items())),
            )
            timeline = self.caches.timelines.get(tl_key)
            if timeline is None:
                tasks = family.build(
                    stages,
                    M,
                    num_devices=positions if family.chunked else None,
                    self_conditioning=sc,
                    feedback_ms=feedback,
                )
                timeline = simulate(tasks, positions, weights)
                self.caches.timelines.put(tl_key, timeline)

        fill: FillReport | None = None
        bubbles = None
        if self.options.enable_bubble_filling:
            bubbles = extract_bubbles(
                timeline,
                min_duration_ms=self.options.min_bubble_ms,
                include_sync_spans=True,
            )
            filler = BubbleFiller(
                self.profile,
                self.model,
                batch_per_group,
                enable_partial_batch=self.options.enable_partial_batch,
                partial_batch_menu=self.options.partial_batch_menu,
                strategy=self.options.fill_strategy,
                lookahead_beam=self.options.lookahead_beam,
                fill_cache=self.caches.fills,
                caches=self.caches,
                schedule=self.schedule,
                shape_quantum=self.options.fill_shape_quantum,
            )
            fill = filler.fill(bubbles, leftover_devices=partition.group_size)

        est = compose_iteration(
            timeline,
            fill,
            nt_total,
            total_devices=partition.group_size,
            bubbles=bubbles,
        )
        return est, fill, timeline
