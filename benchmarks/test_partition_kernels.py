"""Array-kernel DP speedup gate (the PR's headline optimisation).

Times cold table builds of the three partition DPs — heterogeneous
1F1B, the uniform chain, and the CDM bidirectional DP — under both
engines on a fig13c/d-flavoured lattice: the CDM-LSUN down backbone on
one NVSwitch node's cost constants, swept across the group sizes the
figure's cluster sweep visits (D up to 64 devices) at two stage
counts.  The gate is on the
*aggregate* ratio (total reference seconds / total array seconds), so
the lattice's mass distribution is part of the contract: the
heterogeneous shapes dominate, exactly where the planner spends its
time on fig13c/d-class sweeps with ``heterogeneous_replication``.

Timing discipline: every build is cold (fresh :class:`PlannerCaches`),
and every (engine, shape) point takes the best of N runs — single runs
on a shared CI box can be 2-3x off their dispersion floor, and the
best-of floor is the quantity the ratio is stable in.

The engines' *outputs* are asserted bit-identical on one lattice shape
here; exhaustive differential coverage (all pricing modes, both CDM
flavours, fuzzed instances) lives in ``tests/test_partition_kernels.py``.
"""

from __future__ import annotations

import gc
import time

from repro.cluster.collectives import CommCosts
from repro.core.caches import PlannerCaches
from repro.core.partition import (
    PartitionContext,
    _chain_frontiers,
    _het_frontiers,
)
from repro.core.partition_cdm import CDMPartitionContext, _cdm_frontiers

#: required aggregate cold-build speedup of the array engine
MIN_AGGREGATE_SPEEDUP = 5.0

#: best-of runs per (engine, shape) point
BEST_OF = 4


def _interleaved_floors(ref_fn, arr_fn, n=BEST_OF):
    """Best-of-``n`` floors for both engines, runs interleaved.

    Interleaving matters more than the floor here: the box's effective
    speed drifts on a seconds scale (frequency scaling, suite
    neighbours), and timing all of one engine's runs before the other
    lets a drift epoch bill a single engine and swing the ratio 2x.
    Alternating ref/arr samples both engines across the same epochs, so
    drift cancels out of the ratio.  Collector hygiene on top: a full
    collection before the runs (earlier suite tests' garbage is not
    billed here) and automatic collection paused while timing."""
    best_ref = best_arr = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(n):
            t0 = time.perf_counter()
            ref_fn()
            best_ref = min(best_ref, time.perf_counter() - t0)
            t0 = time.perf_counter()
            arr_fn()
            best_arr = min(best_arr, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best_ref, best_arr


def _ctx(profile, component, M=16):
    return PartitionContext(
        profile=profile,
        component=component,
        batch_per_group=256.0,
        num_micro_batches=M,
        p2p=CommCosts(bandwidth=1e9, latency=0.01),
        allreduce=CommCosts(bandwidth=5e8, latency=0.05),
    )


def test_array_kernels_aggregate_speedup(lsun, lsun_profile):
    down, up = lsun.backbone_names
    L = lsun_profile.num_layers(down)
    ld, lu = lsun_profile.num_layers(down), lsun_profile.num_layers(up)
    ctx = _ctx(lsun_profile, down)
    cctx = CDMPartitionContext(
        down=_ctx(lsun_profile, down, M=8), up=_ctx(lsun_profile, up, M=8)
    )

    def het(S, D, kern):
        return lambda: _het_frontiers(
            ctx, L, S, D, PlannerCaches(), dp_kernel=kern
        )

    def chain(kern):
        return lambda: _chain_frontiers(
            ctx, 2, L, 4, PlannerCaches(), dp_kernel=kern
        )

    def cdm(kern):
        return lambda: _cdm_frontiers(
            cctx, 4, 2, PlannerCaches(), cut_step=2, max_frontier=8,
            ld=ld, lu=lu, dp_kernel=kern,
        )

    lattice = [
        ("het S=4 D=16", het(4, 16, "reference"), het(4, 16, "array")),
        ("het S=4 D=32", het(4, 32, "reference"), het(4, 32, "array")),
        ("het S=6 D=32", het(6, 32, "reference"), het(6, 32, "array")),
        ("het S=4 D=64", het(4, 64, "reference"), het(4, 64, "array")),
        ("chain S=4", chain("reference"), chain("array")),
        ("cdm uniform", cdm("reference"), cdm("array")),
    ]

    total_ref = total_arr = 0.0
    rows = []
    for name, ref_fn, arr_fn in lattice:
        t_ref, t_arr = _interleaved_floors(ref_fn, arr_fn)
        total_ref += t_ref
        total_arr += t_arr
        rows.append((name, t_ref, t_arr))

    print()
    for name, t_ref, t_arr in rows:
        print(
            f"  {name:<14} ref {t_ref * 1e3:8.1f} ms   "
            f"arr {t_arr * 1e3:8.1f} ms   {t_ref / t_arr:5.2f}x"
        )
    aggregate = total_ref / total_arr
    print(
        f"  {'aggregate':<14} ref {total_ref * 1e3:8.1f} ms   "
        f"arr {total_arr * 1e3:8.1f} ms   {aggregate:5.2f}x"
    )
    assert aggregate >= MIN_AGGREGATE_SPEEDUP, (
        f"array kernels {aggregate:.2f}x >= {MIN_AGGREGATE_SPEEDUP}x "
        f"aggregate cold-build speedup expected "
        f"(ref {total_ref:.3f}s / arr {total_arr:.3f}s); per-shape: "
        + ", ".join(
            f"{n} {r / a:.2f}x" for n, r, a in rows
        )
    )


def test_array_kernels_identical_tables_on_lattice_shape(lsun, lsun_profile):
    """The speed gate is only meaningful if both engines agree."""
    down = lsun.backbone_names[0]
    L = lsun_profile.num_layers(down)
    ctx = _ctx(lsun_profile, down)
    h_ref, tf_ref = _het_frontiers(
        ctx, L, 4, 16, PlannerCaches(), dp_kernel="reference"
    )
    h_arr, tf_arr = _het_frontiers(
        ctx, L, 4, 16, PlannerCaches(), dp_kernel="array"
    )
    assert tf_ref == tf_arr
    assert len(h_ref) == len(h_arr)
    for d_ref, d_arr in zip(h_ref, h_arr):
        assert list(d_ref.keys()) == list(d_arr.keys())
        for k in d_ref:
            assert d_ref[k] == d_arr[k]
