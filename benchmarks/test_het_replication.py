"""Heterogeneous replication on a non-divisible cluster (D=6, S<=4).

The paper's evaluation pins ``r = D/S`` per stage (footnote 2); the
general partition recursion (Eqns. 7-9) lets every stage pick its own
replica count, which is where real (non power-of-two) clusters live.
This benchmark sweeps a deliberately non-``S | D`` cluster — 6 GPUs,
pipeline groups of 6, up to 4 stages — end to end and checks:

* the planner returns valid heterogeneous plans (contiguous chains,
  device-conserving, non-uniform replicas where ``S !| D``);
* a repeated sweep hits the per-profile heterogeneous DP memo: the
  second pass is at least 5x faster and returns bit-identical plans.

It is deliberately light enough for the fast CI suite
(``-m "not slow" --benchmark-disable``).
"""

from __future__ import annotations

import time

from repro.cluster import single_node
from repro.core.planner import DiffusionPipePlanner, PlannerCaches, PlannerOptions
from repro.models.zoo import stable_diffusion_v2_1
from repro.profiling import Profiler

#: 6 GPUs, one pipeline group of 6: S in {2, 3} divides D, S=4 does not.
HET_OPTIONS = PlannerOptions(
    max_stages=4,
    micro_batch_counts=(1, 2, 3, 4, 6, 8),
    group_sizes=(6,),
    heterogeneous_replication=True,
)

BATCHES = (96, 192)


def _planner(profile, model, cluster, caches=None, **overrides):
    options = HET_OPTIONS
    if overrides:
        from dataclasses import replace

        options = replace(options, **overrides)
    return DiffusionPipePlanner(
        model, cluster, profile, options=options,
        caches=caches if caches is not None else PlannerCaches(),
    )


def _check_chain(partition, D):
    """Contiguity + device conservation of a heterogeneous chain."""
    chain = partition.down
    assert chain[0].lo == 0
    for a, b in zip(chain, chain[1:]):
        assert a.hi == b.lo
    assert all(st.replicas >= 1 for st in chain)
    assert sum(st.replicas for st in chain) <= D
    assert partition.group_size == D


def test_het_replication_sweep_end_to_end(benchmark):
    """Full planner sweep (partition + simulate + fill) on D=6."""
    model = stable_diffusion_v2_1()
    cluster = single_node(6)
    profile = Profiler(cluster).profile(model)
    planner = _planner(profile, model, cluster)

    plans = benchmark.pedantic(
        lambda: {b: planner.plan(b).plan for b in BATCHES}, rounds=1, iterations=1
    )
    for b, plan in plans.items():
        assert plan.throughput > 0, f"infeasible at batch {b}"
        _check_chain(plan.partition, 6)

    # The non-divisible combo the homogeneous planner would skip: S=4 on
    # 6 devices.  The DP must return a valid plan with non-uniform
    # replicas (uniform is impossible: 4 !| 6).
    ev = planner.evaluate(96, group_size=6, num_stages=4, num_micro=4)
    assert ev is not None
    chain = ev.plan.partition.down
    _check_chain(ev.plan.partition, 6)
    # The acceptance criterion: a non-uniform replica assignment
    # (uniform is impossible with 4 stages on 6 devices).  How many of
    # the 6 devices the optimum uses is a W-vs-Y trade-off the profile
    # decides, so it is deliberately not pinned here.
    assert len({st.replicas for st in chain}) > 1, [st.replicas for st in chain]


def test_het_dp_memo_speedup():
    """A repeated sweep (fresh planner, shared PlannerCaches, same
    ProfileDB) must hit the per-profile heterogeneous DP memo and the
    shared timeline memo: >= 5x faster, bit-identical plans.

    Filling is disabled so the measured work is the partition DP and the
    schedule simulation — the parts the memos cover (filling is
    benchmarked above).
    """
    model = stable_diffusion_v2_1()
    cluster = single_node(6)

    def measure():
        # A fresh PlannerCaches isolates the timeline memo, and a fresh
        # profile guarantees cold per-profile DP tables, even when other
        # tests (or a previous measurement attempt) ran first.
        caches = PlannerCaches()
        profile = Profiler(cluster).profile(model)

        def sweep():
            planner = _planner(
                profile, model, cluster, caches=caches,
                enable_bubble_filling=False,
            )
            return {b: planner.plan(b).plan for b in BATCHES}

        t0 = time.perf_counter()
        first = sweep()
        cold = time.perf_counter() - t0
        tables = caches.het.entry_count(profile)
        assert tables > 0, "cold sweep must build heterogeneous DP tables"
        # Best of three warm passes: the warm path is milliseconds of
        # cache reads, so a single scheduler stall on a shared CI
        # runner could otherwise sink the ratio.
        warm = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            second = sweep()
            warm = min(warm, time.perf_counter() - t0)
            assert first == second, "memoized sweep must be bit-identical"
        # Structural memo-hit evidence, independent of wall clock: the
        # warm sweeps added no DP tables.
        assert caches.het.entry_count(profile) == tables
        return cold, warm

    # The wall-clock ratio is the acceptance criterion, but timing on
    # shared runners is noisy — allow one full re-measurement (a fresh
    # profile makes the first pass genuinely cold again).
    for attempt in (1, 2):
        cold, warm = measure()
        if cold >= 5 * warm:
            break
    assert cold >= 5 * warm, f"cold={cold:.3f}s warm={warm:.3f}s (< 5x)"


def test_divisible_stages_unaffected_by_het_flag():
    """On S | D combos the heterogeneous DP may only match or improve
    the homogeneous objective, and uniform replication stays available
    (it is one of the states the general recursion enumerates)."""
    model = stable_diffusion_v2_1()
    cluster = single_node(6)
    profile = Profiler(cluster).profile(model)
    het = _planner(profile, model, cluster)
    hom = _planner(profile, model, cluster, heterogeneous_replication=False)
    for S in (2, 3):  # both divide 6
        ev_het = het.evaluate(96, group_size=6, num_stages=S, num_micro=4)
        ev_hom = hom.evaluate(96, group_size=6, num_stages=S, num_micro=4)
        assert ev_het is not None and ev_hom is not None
        assert (
            ev_het.plan.partition.t_max_ms
            <= ev_hom.plan.partition.t_max_ms + 1e-9
        )
