"""Fig. 13b: ControlNet v1.0 training throughput on 8-64 GPUs.

ControlNet's non-trainable part is relatively large (Table 1: 76-89 % of
the trainable time), so bubble filling pays off even more than for SD:
the paper reports 1.41x over GPipe and 1.28x over DeepSpeed at batch
2048 on 64 GPUs.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.harness import (
    SD_BATCHES,
    ThroughputSweep,
    cells_to_rows,
    format_table,
    sweep_headers,
)
from repro.models.zoo import controlnet_v1_0


def _sweep(self_conditioning: bool):
    sweep = ThroughputSweep(
        lambda: controlnet_v1_0(self_conditioning=self_conditioning),
        machine_counts=(1, 2, 4, 8),
        batches=SD_BATCHES,
    )
    return sweep.run()


@pytest.mark.parametrize("mode", ["vanilla", "self-conditioning"])
def test_fig13b_controlnet_throughput(benchmark, mode):
    cells = benchmark.pedantic(
        _sweep, args=(mode == "self-conditioning",), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            sweep_headers(cells),
            cells_to_rows(cells),
            title=f"Fig. 13b - ControlNet v1.0 throughput (samples/s), {mode}",
        )
    )
    by = {(c.system, c.gpus, c.batch): c for c in cells}

    def thpt(system, gpus, batch):
        c = by[(system, gpus, batch)]
        return c.throughput if not c.oom else 0.0

    for gpus, batches in SD_BATCHES.items():
        for b in batches:
            dp = thpt("DiffusionPipe", gpus, b)
            assert dp > 0
            assert dp >= thpt("SPP", gpus, b) * 0.999
            assert dp >= thpt("GPipe", gpus, b) * 0.999
    # The headline comparison: batch 2048 on 64 GPUs.
    dp = thpt("DiffusionPipe", 64, 2048)
    gp = thpt("GPipe", 64, 2048)
    ddp = thpt("DeepSpeed", 64, 2048)
    print(f"64 GPUs @2048: vs GPipe {dp / gp:.2f}x (paper 1.41x), "
          f"vs DeepSpeed {dp / ddp:.2f}x (paper 1.28x)")
    assert dp / gp > 1.2
    assert dp / ddp > 1.05
