"""Fig. 15: ablation on 8 GPUs — disabling the partial-batch layer, and
disabling bubble filling entirely.

Paper: disabling the partial-batch layer degrades throughput and
disabling filling degrades it further (10.9 % / 17.6 % for ControlNet at
batch 256); at batch 384 the no-partial-batch variant collapses to the
no-filling level because the extra-long layer blocks everything behind
it.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.harness import ablation_throughputs, format_table

BATCHES = (256, 384)


def _ablate(model, cluster, profile):
    return ablation_throughputs(model, cluster, profile, batches=BATCHES)


@pytest.mark.parametrize("which", ["sd", "controlnet"])
def test_fig15_ablation(
    benchmark,
    which,
    cluster8,
    sd_vanilla,
    sd_profile,
    controlnet_vanilla,
    controlnet_profile,
):
    model, profile = (
        (sd_vanilla, sd_profile)
        if which == "sd"
        else (controlnet_vanilla, controlnet_profile)
    )
    result = benchmark.pedantic(
        _ablate, args=(model, cluster8, profile), rounds=1, iterations=1
    )
    rows = [
        [name, *(f"{result[name][b]:.0f}" for b in BATCHES)]
        for name in result
    ]
    print()
    print(
        format_table(
            [f"{model.name} / batch", *map(str, BATCHES)],
            rows,
            title="Fig. 15 - ablation (samples/s), 8 GPUs",
        )
    )
    for b in BATCHES:
        full = result["DiffusionPipe"][b]
        no_partial = result["Partial-batch disabled"][b]
        no_fill = result["Bubble filling disabled"][b]
        lookahead = result["Fill strategy: lookahead"][b]
        # Ordering: full >= no-partial >= no-filling.
        assert full >= no_partial * 0.999, (b, full, no_partial)
        assert no_partial >= no_fill * 0.999, (b, no_partial, no_fill)
        # Disabling filling costs real throughput (paper: up to 17.6 %).
        assert full / no_fill > 1.04, (b, full, no_fill)
        # The cross-bubble planner never loses to the per-bubble greedy:
        # per configuration its leftover is <= greedy's, so the best
        # configuration's throughput is >= too.
        assert lookahead >= full * 0.999999, (b, lookahead, full)
