"""§6.4: pre-processing overhead — profiling, model partitioning and
bubble filling each complete within the paper's budgets.

Paper: profiling ~55 s (SD v2.1 on 16 GPUs at batch 512, amortised over
the cluster); partitioning ~0.5 s; bubble filling < 1 s.  Partitioning
and filling below measure *our* actual algorithm wall-clock on one CPU,
which is the paper's own accounting for the filling step.
"""

from __future__ import annotations

import time

from repro.cluster import p4de_cluster
from repro.core import (
    DiffusionPipePlanner,
    PlannerOptions,
    extract_bubbles,
    BubbleFiller,
)
from repro.harness import ExperimentReport
from repro.profiling import Profiler
from repro.schedule import build_1f1b, simulate


def _preprocess(model, cluster):
    """One full front-end pass; returns (wall-times, profiling estimate)."""
    t0 = time.perf_counter()
    profiler = Profiler(cluster)
    profile = profiler.profile(model)
    profiling_wall = time.perf_counter() - t0
    profiling_sim = profiler.report(model).wall_time_ms / 1e3  # seconds

    planner = DiffusionPipePlanner(
        model, cluster, profile,
        options=PlannerOptions(max_stages=4, group_sizes=(2, 4, 8),
                               micro_batch_counts=(1, 2, 4, 8)),
    )
    t0 = time.perf_counter()
    partition = planner._partition(512 / (cluster.world_size // 8), 8, 4, 4)
    partition_wall = time.perf_counter() - t0

    stages = planner._stage_execs(partition.down, partition.micro_batch, sc=False)
    timeline = simulate(build_1f1b(stages, 4), 4,
                        {i: partition.down[i].replicas for i in range(4)})
    bubbles = extract_bubbles(timeline)
    filler = BubbleFiller(profile, model, partition.batch_per_group)
    t0 = time.perf_counter()
    filler.fill(bubbles, leftover_devices=partition.group_size)
    filling_wall = time.perf_counter() - t0
    return profiling_wall, profiling_sim, partition_wall, filling_wall


def test_sec64_preprocessing(benchmark, sd_vanilla):
    cluster = p4de_cluster(2)  # the paper's 2-machine profiling setup
    prof_wall, prof_sim, part_wall, fill_wall = benchmark.pedantic(
        _preprocess, args=(sd_vanilla, cluster), rounds=1, iterations=1
    )
    report = ExperimentReport("Sec 6.4 - pre-processing overhead")
    report.add("profiling (simulated cluster wall)", "seconds", 55.0, round(prof_sim, 1))
    report.add("partitioning (actual)", "seconds", 0.5, round(part_wall, 3))
    report.add("bubble filling (actual)", "seconds", 1.0, round(fill_wall, 3))
    print()
    print(report.to_table())
    print(f"(profile-database construction itself took {prof_wall:.2f}s)")

    # The simulated cluster-parallel profiling run lands in the paper's
    # order of magnitude (the paper profiles up to batch 512; our grid
    # stops at 128, hence the smaller absolute figure)...
    assert 1.0 < prof_sim < 300.0
    # ...and the real algorithm costs stay within the paper's budgets.
    assert part_wall < 5.0
    assert fill_wall < 1.0
