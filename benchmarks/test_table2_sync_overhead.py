"""Table 2: proportion of gradient synchronisation in the DDP iteration
time at local batch size 8, on 8/16/32/64 GPUs.

Paper values: SD v2.1 5.2/19.3/36.1/38.1 %, ControlNet 6.9/22.7/39.1/40.1 %.
"""

from __future__ import annotations

from repro.baselines import DataParallelBaseline
from repro.cluster import p4de_cluster
from repro.harness import ExperimentReport, format_table
from repro.profiling import Profiler

MACHINES = (1, 2, 4, 8)
PAPER = {
    "stable-diffusion-v2.1": (0.052, 0.193, 0.361, 0.381),
    "controlnet-v1.0": (0.069, 0.227, 0.391, 0.401),
}
LOCAL_BATCH = 8


def _compute(models):
    report = ExperimentReport("Table 2 - sync share of iteration")
    table_rows = []
    for model in models:
        row = [model.name]
        for machines, paper in zip(MACHINES, PAPER[model.name]):
            cluster = p4de_cluster(machines)
            profile = Profiler(cluster).profile(model)
            ddp = DataParallelBaseline(model, cluster, profile)
            res = ddp.run(LOCAL_BATCH * cluster.world_size)
            report.add(
                f"{model.name} {cluster.world_size} GPUs",
                "sync share",
                paper,
                round(res.sync_share, 3),
            )
            row.append(f"{100 * res.sync_share:.1f}%")
        table_rows.append(row)
    return report, table_rows


def test_table2_sync_overhead(benchmark, sd_vanilla, controlnet_vanilla):
    models = [sd_vanilla, controlnet_vanilla]
    report, rows = benchmark.pedantic(
        _compute, args=(models,), rounds=1, iterations=1
    )
    print()
    print(report.to_table())
    print(format_table(["Model / GPU count", "8", "16", "32", "64"], rows))
    # All cells within 15 % relative deviation; share grows with scale.
    assert report.max_abs_deviation() < 0.15
    for model in models:
        shares = [
            c.measured
            for c in report.comparisons
            if c.setting.startswith(model.name)
        ]
        assert shares == sorted(shares)
