"""Schedule-family comparison: bubble ratio per family on the zoo.

Every registered single-backbone family is evaluated at the same
(D, S, M) point so the comparison isolates the schedule shape.  The
gate (run in the fast CI suite) asserts the expected ordering on the
unfilled bubble ratio with bubble filling still applied on top:

    zerobubble < interleaved < onef1b

Zero-bubble hides the warm-up/cool-down ramps behind deferred
weight-gradient (W) work; interleaving shrinks the ramps to per-chunk
size; 1F1B pays them in full.  GPipe is reported but not ranked: at a
fixed (S, M) its bubble *ratio* matches 1F1B's (the classic result —
1F1B's advantage is activation memory, not bubble time).
"""

from __future__ import annotations

import pytest

from repro.core.planner import PlannerOptions
from repro.harness import bubble_ratio_by_family, format_table, pct
from repro.profiling import Profiler

FAMILIES = ("gpipe", "onef1b", "interleaved", "zerobubble")


@pytest.fixture(scope="session")
def sd_selfcond_profile(cluster8, sd_selfcond):
    return Profiler(cluster8).profile(sd_selfcond)


def _rows(model, cluster, profile):
    return bubble_ratio_by_family(
        model, cluster, profile, families=FAMILIES,
        global_batch=256, group_size=8, num_stages=4, num_micro=8,
    )


@pytest.mark.parametrize("which", ["sd", "sd_sc", "controlnet"])
def test_schedule_family_bubble_ordering(
    benchmark,
    which,
    cluster8,
    sd_vanilla,
    sd_profile,
    sd_selfcond,
    sd_selfcond_profile,
    controlnet_vanilla,
    controlnet_profile,
):
    model, profile = {
        "sd": (sd_vanilla, sd_profile),
        "sd_sc": (sd_selfcond, sd_selfcond_profile),
        "controlnet": (controlnet_vanilla, controlnet_profile),
    }[which]
    rows = benchmark.pedantic(
        _rows, args=(model, cluster8, profile), rounds=1, iterations=1
    )
    by_family = {r.family: r for r in rows}
    print()
    print(
        format_table(
            ["family", "bubble (raw)", "bubble (filled)", "fill", "thr"],
            [
                [
                    r.family,
                    pct(r.bubble_ratio_unfilled),
                    pct(r.bubble_ratio_filled),
                    pct(r.fill_fraction),
                    f"{r.throughput:.0f}",
                ]
                for r in rows
            ],
            title=f"Schedule families - {model.name}, 8 GPUs, S=4, M=8",
        )
    )
    zb = by_family["zerobubble"]
    il = by_family["interleaved"]
    f1b = by_family["onef1b"]
    # The headline ordering on raw schedule bubbles (gpipe is in the
    # table for reference only: its ratio ties 1F1B's at fixed (S, M)).
    assert zb.bubble_ratio_unfilled < il.bubble_ratio_unfilled
    assert il.bubble_ratio_unfilled < f1b.bubble_ratio_unfilled
    # Filling still engages on every family's bubbles (the new
    # families' bubbles are real fill targets, not simulator artifacts)
    # and never makes a schedule worse.
    for r in rows:
        assert r.fill_fraction > 0.0
        assert r.bubble_ratio_filled <= r.bubble_ratio_unfilled
    # Splitting the backward also beats plain 1F1B after filling.
    assert zb.bubble_ratio_filled < f1b.bubble_ratio_filled


def test_zerobubble_beats_onef1b_throughput(cluster8, sd_vanilla, sd_profile):
    """At a fixed configuration the W-sliding schedule strictly wins on
    the raw pipeline (filling disabled: with filling on, 1F1B's larger
    bubbles are themselves fill capacity, so filled throughputs of the
    two families converge and the comparison stops isolating the
    schedule)."""
    rows = bubble_ratio_by_family(
        sd_vanilla, cluster8, sd_profile,
        families=("onef1b", "zerobubble"),
        global_batch=256, group_size=8, num_stages=4, num_micro=8,
        options=PlannerOptions(enable_bubble_filling=False),
    )
    by_family = {r.family: r for r in rows}
    assert (
        by_family["zerobubble"].throughput > by_family["onef1b"].throughput
    )
