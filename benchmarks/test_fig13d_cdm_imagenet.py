"""Fig. 13d: CDM-ImageNet (backbones 2 and 3) throughput.

Same systems and shape expectations as Fig. 13c, with the larger
256x256 super-resolution backbone stressing memory harder.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.harness import (
    CDM_IMAGENET_BATCHES,
    CDMThroughputSweep,
    cells_to_rows,
    format_table,
    sweep_headers,
)
from repro.models.zoo import cdm_imagenet


def _sweep():
    return CDMThroughputSweep(
        cdm_imagenet, machine_counts=(1, 2, 4, 8), batches=CDM_IMAGENET_BATCHES
    ).run()


def test_fig13d_cdm_imagenet(benchmark):
    cells = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            sweep_headers(cells),
            cells_to_rows(cells),
            title="Fig. 13d - CDM-ImageNet throughput (samples/s)",
        )
    )
    by = {(c.system, c.gpus, c.batch): c for c in cells}

    def cell(system, gpus, batch):
        return by[(system, gpus, batch)]

    for gpus, batches in CDM_IMAGENET_BATCHES.items():
        for b in batches:
            dp = cell("DiffusionPipe", gpus, b)
            assert not dp.oom, f"DiffusionPipe OOM at {gpus} GPUs B={b}"
            p = cell("DeepSpeed-P", gpus, b)
            if not p.oom:
                # Comparable (see Fig. 13c note on the -P topology edge
                # at small multi-node batches, strongest for the small
                # per-backbone batches of this figure).
                assert dp.throughput / p.throughput > 0.70
    # The biggest batch per scale defeats the parallel DP strategy.
    for gpus, batches in CDM_IMAGENET_BATCHES.items():
        assert cell("DeepSpeed-P", gpus, batches[-1]).oom or cell(
            "DeepSpeed-P", gpus, batches[-1]
        ).throughput <= cell("DiffusionPipe", gpus, batches[-1]).throughput * 1.2
