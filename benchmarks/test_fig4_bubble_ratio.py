"""Fig. 4: pipeline-bubble ratio grids at batch size 64 under FIFO-1F1B.

Upper number: bubble device-time / (iteration time x devices), where the
iteration includes the NT part executed data-parallel before pipelining.
Lower number: bubble device-time / NT single-device execution time.

Paper (SD v2.1): e.g. (S=4,M=1) 67.6 % / 684.3 %; (S=2,M=4) 14.8 % / 57.0 %.
"""

from __future__ import annotations

import pytest

from repro.harness import bubble_ratio_grid, format_table

#: paper's Fig. 4a values keyed by (stages, micro-batches):
#: (ratio of iteration, ratio of NT time)
PAPER_SD = {
    (4, 1): (0.676, 6.843), (4, 2): (0.510, 3.422),
    (4, 3): (0.410, 2.281), (4, 4): (0.343, 1.711),
    (3, 1): (0.582, 4.562), (3, 2): (0.410, 2.281),
    (3, 3): (0.317, 1.521), (3, 4): (0.258, 1.141),
    (2, 1): (0.410, 2.281), (2, 2): (0.258, 1.141),
    (2, 3): (0.188, 0.760), (2, 4): (0.148, 0.570),
}
PAPER_CN = {
    (4, 1): (0.613, 3.354), (4, 4): (0.284, 0.839),
    (2, 1): (0.345, 1.118), (2, 4): (0.117, 0.280),
}


def _grid(model, cluster, profile):
    return bubble_ratio_grid(model, cluster, profile, batch=64)


@pytest.mark.parametrize("which", ["sd", "controlnet"])
def test_fig4_bubble_ratio(
    benchmark,
    which,
    cluster8,
    sd_vanilla,
    sd_profile,
    controlnet_vanilla,
    controlnet_profile,
):
    model, profile = (
        (sd_vanilla, sd_profile)
        if which == "sd"
        else (controlnet_vanilla, controlnet_profile)
    )
    cells = benchmark.pedantic(
        _grid, args=(model, cluster8, profile), rounds=1, iterations=1
    )
    by_key = {(c.num_stages, c.num_micro): c for c in cells}
    paper = PAPER_SD if which == "sd" else PAPER_CN

    rows = []
    for S in (4, 3, 2):
        row = [f"S={S}"]
        for M in (1, 2, 3, 4):
            c = by_key[(S, M)]
            row.append(f"{100 * c.ratio_of_iteration:.1f}%/{100 * c.ratio_of_nt_time:.0f}%")
        rows.append(row)
    print()
    print(format_table([f"{model.name}", "M=1", "M=2", "M=3", "M=4"], rows))

    # Shape: ratio decreases with M at fixed S, increases with S at fixed M.
    for S in (2, 3, 4):
        series = [by_key[(S, M)].ratio_of_iteration for M in (1, 2, 3, 4)]
        assert series == sorted(series, reverse=True)
    for M in (1, 2, 3, 4):
        series = [by_key[(S, M)].ratio_of_iteration for S in (2, 3, 4)]
        assert series == sorted(series)
    # Values: within 6 pp (iteration ratio) / 25 % relative (NT ratio)
    # of the paper's numbers at the anchor cells.  The paper's grid
    # follows perfectly balanced stages; our DP splits 33 discrete
    # layers (plus inter-stage communication), so per-cell bubble time
    # deviates slightly more.
    for key, (p_iter, p_nt) in paper.items():
        c = by_key[key]
        assert abs(c.ratio_of_iteration - p_iter) < 0.06, (key, c)
        assert abs(c.ratio_of_nt_time - p_nt) / p_nt < 0.25, (key, c)
