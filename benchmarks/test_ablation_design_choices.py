"""Ablations of this implementation's own design choices (DESIGN.md §5).

Not a paper artifact — these benches justify internal decisions:

1. homogeneous stage replication (paper footnote 2) vs the general
   heterogeneous DP;
2. the CDM partitioner's cut-step coarsening;
3. the 10 ms minimum-bubble threshold (paper footnote 3);
4. the partial-batch size menu (paper §5).
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

import time
from dataclasses import replace

from repro.cluster import single_node
from repro.core import (
    CDMPartitionContext,
    DiffusionPipePlanner,
    PartitionContext,
    PlannerOptions,
    partition_backbone,
    partition_cdm,
)
from repro.harness import format_table
from repro.models.zoo import cdm_lsun, stable_diffusion_v2_1
from repro.profiling import Profiler


def _setup():
    cluster = single_node(8)
    sd = stable_diffusion_v2_1(self_conditioning=False)
    lsun = cdm_lsun()
    return (
        cluster,
        sd,
        Profiler(cluster).profile(sd),
        lsun,
        Profiler(cluster).profile(lsun),
    )


def _run_all():
    cluster, sd, sd_prof, lsun, lsun_prof = _setup()
    results: dict[str, tuple[float, float]] = {}

    # 1. Homogeneous vs heterogeneous replication on SD, S=2, D=8.
    planner = DiffusionPipePlanner(
        sd, cluster, sd_prof,
        options=PlannerOptions(group_sizes=(2, 4, 8), check_memory=False),
    )
    ctx = PartitionContext(
        profile=sd_prof, component="unet", batch_per_group=256,
        num_micro_batches=4, p2p=planner._p2p_costs(8),
        allreduce=planner._allreduce_costs(8, 4),
    )
    t0 = time.perf_counter()
    hom = partition_backbone(ctx, 2, 8)
    t_hom = time.perf_counter() - t0
    t0 = time.perf_counter()
    het = partition_backbone(ctx, 2, 8, heterogeneous=True)
    t_het = time.perf_counter() - t0
    results["replication hom"] = (hom.t_max_ms, t_hom)
    results["replication het"] = (het.t_max_ms, t_het)

    # 2. CDM cut-step coarsening: quality vs runtime.
    mk = lambda comp: PartitionContext(
        profile=lsun_prof, component=comp, batch_per_group=64,
        num_micro_batches=2, p2p=planner._p2p_costs(2),
        allreduce=planner._allreduce_costs(2, 1),
    )
    cdm_ctx = CDMPartitionContext(down=mk("base_64"), up=mk("sr_128"))
    for step in (1, 2, 4):
        t0 = time.perf_counter()
        plan = partition_cdm(cdm_ctx, 2, 2, cut_step=step)
        results[f"cdm cut_step={step}"] = (
            plan.t_max_ms, time.perf_counter() - t0
        )

    # 3/4. Planner-level: bubble threshold and partial-batch menu.
    base = PlannerOptions(group_sizes=(2, 4, 8))
    for name, opts in {
        "min_bubble=10ms (paper)": base,
        "min_bubble=50ms": replace(base, min_bubble_ms=50.0),
        "menu=paper": base,
        "menu={32,64}": replace(base, partial_batch_menu=(32, 64)),
    }.items():
        p = DiffusionPipePlanner(sd, cluster, sd_prof, options=opts)
        results[name] = (p.plan(256).plan.throughput, 0.0)
    return results


def test_ablation_design_choices(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = [
        [k, f"{v[0]:.1f}", f"{v[1] * 1e3:.1f} ms"] for k, v in results.items()
    ]
    print()
    print(format_table(
        ["design choice", "objective / samples/s", "solve time"], rows,
        title="Implementation design-choice ablations",
    ))
    # Heterogeneous replication can only improve the bound, at higher cost.
    assert results["replication het"][0] <= results["replication hom"][0] + 1e-6
    # Coarser CDM cuts trade at most ~10 % bound quality for speed here.
    exact = results["cdm cut_step=1"]
    coarse = results["cdm cut_step=4"]
    assert coarse[0] <= exact[0] * 1.10
    assert coarse[1] < exact[1]
    # A richer partial-batch menu never hurts throughput.
    assert results["menu=paper"][0] >= results["menu={32,64}"][0] * 0.999
    # Ignoring small bubbles costs little (they are small by definition).
    assert results["min_bubble=50ms"][0] >= results["min_bubble=10ms (paper)"][0] * 0.9
