"""Snapshot-seeded warm planning: the ISSUE's >= 5x gate.

Two gates, both on the SD heterogeneous sweep of
``test_het_replication.py`` (D=6, S<=4, filling off — the memo-covered
work):

* **in-process**: snapshot a warmed :class:`PlannerCaches`, restore it
  into a *fresh* instance keyed onto a *freshly re-profiled* model (the
  cross-process path, minus the process), and re-sweep: >= 5x faster
  than cold, bit-identical plans;
* **cross-process**: a ``ProcessPoolExecutor`` worker seeded from the
  snapshot file answers the same request stream >= 5x faster than an
  unseeded worker, with identical responses — proving the service's
  worker-seeding path end to end.

Light enough for the fast CI suite (``--benchmark-disable``).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor

from repro.cluster import single_node
from repro.core import DiffusionPipePlanner, PlannerCaches, PlannerOptions
from repro.models.zoo import stable_diffusion_v2_1
from repro.profiling import Profiler

OPTIONS = PlannerOptions(
    max_stages=4,
    micro_batch_counts=(1, 2, 3, 4, 6, 8),
    group_sizes=(6,),
    heterogeneous_replication=True,
    enable_bubble_filling=False,
)
BATCHES = (96, 192)


def _sweep(caches, profile, model, cluster):
    planner = DiffusionPipePlanner(
        model, cluster, profile, options=OPTIONS, caches=caches
    )
    return {b: planner.plan(b).plan for b in BATCHES}


def test_snapshot_warm_sweep_5x(tmp_path):
    model = stable_diffusion_v2_1()
    cluster = single_node(6)
    path = tmp_path / "warm.snap"

    # The profile must stay alive until the snapshot is written: the
    # DP tables are weak-keyed by it.
    src_profile = Profiler(cluster).profile(model)
    warm_src = PlannerCaches()
    baseline = _sweep(warm_src, src_profile, model, cluster)
    written = warm_src.snapshot(path)
    assert written["het"] > 0 and written["timelines"] > 0, written
    del src_profile

    def measure():
        # Cold: fresh caches, fresh profile (same content fingerprint).
        profile = Profiler(cluster).profile(model)
        cold_caches = PlannerCaches()
        t0 = time.perf_counter()
        cold_plans = _sweep(cold_caches, profile, model, cluster)
        cold = time.perf_counter() - t0
        # Warm: fresh caches + snapshot restore onto yet another fresh
        # profile.  Best of three, as in the sibling memo benchmarks.
        warm = float("inf")
        for _ in range(3):
            profile = Profiler(cluster).profile(model)
            warm_caches = PlannerCaches()
            warm_caches.load(path, [profile])
            t0 = time.perf_counter()
            warm_plans = _sweep(warm_caches, profile, model, cluster)
            warm = min(warm, time.perf_counter() - t0)
            assert warm_plans == cold_plans == baseline, (
                "snapshot-warmed plans must be bit-identical"
            )
            assert warm_caches.stats().store("timelines").misses == 0
        return cold, warm

    for attempt in (1, 2):
        cold, warm = measure()
        if cold >= 5 * warm:
            break
    assert cold >= 5 * warm, f"cold={cold:.3f}s warm={warm:.3f}s (< 5x)"


def _worker_sweep(snapshot_path):
    """Runs inside a worker process: build the planner (profiling and
    snapshot restore excluded from the timing), then sweep."""
    model = stable_diffusion_v2_1()
    cluster = single_node(6)
    profile = Profiler(cluster).profile(model)
    caches = PlannerCaches()
    if snapshot_path is not None:
        caches.load(snapshot_path, [profile])
    t0 = time.perf_counter()
    plans = _sweep(caches, profile, model, cluster)
    elapsed = time.perf_counter() - t0
    report = {
        b: (p.config_label, p.throughput, p.iteration_ms)
        for b, p in plans.items()
    }
    return report, elapsed, caches.stats().store("timelines").hits


def test_process_pool_worker_replays_snapshot_warm(tmp_path):
    model = stable_diffusion_v2_1()
    cluster = single_node(6)
    path = str(tmp_path / "warm.snap")
    src_profile = Profiler(cluster).profile(model)
    warm_src = PlannerCaches()
    _sweep(warm_src, src_profile, model, cluster)
    written = warm_src.snapshot(path)
    assert written["het"] > 0 and written["timelines"] > 0, written
    del src_profile

    def measure():
        # One worker per measurement so no in-process state carries
        # over; the cold worker proves the baseline, the seeded worker
        # the service's startup path.
        with ProcessPoolExecutor(max_workers=1) as pool:
            cold_report, cold, _ = pool.submit(_worker_sweep, None).result()
        with ProcessPoolExecutor(max_workers=1) as pool:
            warm = float("inf")
            for _ in range(3):
                warm_report, elapsed, tl_hits = pool.submit(
                    _worker_sweep, path
                ).result()
                warm = min(warm, elapsed)
                assert warm_report == cold_report, (
                    "seeded worker must report identically to a cold one"
                )
                assert tl_hits > 0, "worker never hit the restored memo"
        return cold, warm

    for attempt in (1, 2):
        cold, warm = measure()
        if cold >= 5 * warm:
            break
    assert cold >= 5 * warm, f"cold={cold:.3f}s warm={warm:.3f}s (< 5x)"
