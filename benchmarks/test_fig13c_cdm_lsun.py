"""Fig. 13c: CDM-LSUN throughput — DiffusionPipe's bidirectional
pipelines vs sequential/parallel data-parallel CDM training.

Paper shape: DiffusionPipe is comparable to DeepSpeed-P (little NT work
to fill bubbles with; backbones of similar size), but keeps training at
batch sizes where the data-parallel strategies go out of memory.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.harness import (
    CDM_LSUN_BATCHES,
    CDMThroughputSweep,
    cells_to_rows,
    format_table,
    sweep_headers,
)
from repro.models.zoo import cdm_lsun


def _sweep():
    return CDMThroughputSweep(
        cdm_lsun, machine_counts=(1, 2, 4, 8), batches=CDM_LSUN_BATCHES
    ).run()


def test_fig13c_cdm_lsun(benchmark):
    cells = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            sweep_headers(cells),
            cells_to_rows(cells),
            title="Fig. 13c - CDM-LSUN throughput (samples/s)",
        )
    )
    by = {(c.system, c.gpus, c.batch): c for c in cells}

    def thpt(system, gpus, batch):
        c = by[(system, gpus, batch)]
        return c.throughput if not c.oom else 0.0

    for gpus, batches in CDM_LSUN_BATCHES.items():
        for b in batches:
            dp = thpt("DiffusionPipe", gpus, b)
            p = thpt("DeepSpeed-P", gpus, b)
            if p > 0:
                # Comparable to DeepSpeed-P.  At small multi-node
                # batches DeepSpeed-P's topology advantage (each
                # backbone confined to fewer machines) wins by up to
                # ~20 %; at 64 GPUs / large batches DiffusionPipe wins.
                assert dp / p > 0.75, (gpus, b, dp, p)
    # DiffusionPipe reaches batch sizes where both -P strategies OOM.
    largest = CDM_LSUN_BATCHES[8][-1]
    assert by[("DeepSpeed-P", 8, largest)].oom
    assert not by[("DiffusionPipe", 8, largest)].oom
