"""Bubble-filling engine benchmarks (fast suite, CI's benchmark step).

Four claims of the filling engine are checked:

* the sweep-line ``extract_bubbles`` (O(E log E) over idle-span edge
  events) is equivalent to — and at least 5x faster than — the retained
  quadratic breakpoint scan ``extract_bubbles_reference``;
* a repeated fill over the same timeline hits the per-profile
  prefix-time cache: bit-identical report, no new cache entries, and a
  measurably faster warm pass;
* the pruned+adaptive ``lookahead`` strategy is planner-grade: a cold
  fig13a-flavoured planner sweep costs at most 5x the greedy sweep
  (dominance pruning + the narrow-by-default beam), never reporting a
  larger leftover than greedy on any sweep point;
* a warm shape-cache hit replays a lookahead fill at least 5x faster
  than the cold search, bit-identically.

Like ``test_het_replication.py`` this is deliberately light enough for
``-m "not slow" --benchmark-disable``.
"""

from __future__ import annotations

import random
import time
from dataclasses import replace

from repro.cluster.topology import p4de_cluster
from repro.core import (
    Bubble,
    BubbleFiller,
    FillShapeCache,
    extract_bubbles,
    extract_bubbles_reference,
)
from repro.core.planner import DiffusionPipePlanner, PlannerCaches
from repro.harness.throughput import BENCH_PLANNER_OPTIONS
from repro.models.zoo import stable_diffusion_v2_1
from repro.profiling import Profiler
from repro.models import ModelSpec
from repro.models.zoo import timed_component
from repro.profiling import ProfileDB
from repro.schedule import Task, TaskKind, Timeline, device_resource
from repro.schedule.timeline import Interval

#: fuzzed-timeline size: ~2 * DEVICES * SPANS span edges for the sweep,
#: segments x devices x spans work for the quadratic reference
DEVICES = 8
SPANS = 150


def _iv(start, end, dev, kind=TaskKind.FORWARD):
    task = Task(
        task_id=f"{kind.value}@{dev}:{start:.3f}",
        resource=device_resource(dev),
        duration=end - start,
        kind=kind,
        device=dev,
    )
    return Interval(start, end, task)


def _fuzzed_timeline(seed=7, devices=DEVICES, spans=SPANS) -> Timeline:
    rng = random.Random(seed)
    intervals = []
    for d in range(devices):
        t = rng.uniform(0.0, 5.0)
        for i in range(spans):
            busy = rng.uniform(0.5, 8.0)
            kind = TaskKind.SYNC if i % 11 == 0 else TaskKind.FORWARD
            intervals.append(_iv(t, t + busy, d, kind))
            t += busy + rng.uniform(0.5, 15.0)
    return Timeline(intervals, devices)


def test_sweep_line_extraction_equivalent_and_faster(benchmark):
    tl = _fuzzed_timeline()
    # Prewarm the timeline's per-device interval index so both
    # implementations measure extraction alone.
    tl.device_intervals(0)

    fast = benchmark.pedantic(
        lambda: extract_bubbles(tl, min_duration_ms=0.0), rounds=1, iterations=1
    )
    ref = extract_bubbles_reference(tl, min_duration_ms=0.0)
    assert fast == ref
    assert len(fast) > 100  # the fuzz produced a real workload
    # Strict view equivalence too.
    assert extract_bubbles(
        tl, min_duration_ms=10.0, include_sync_spans=False
    ) == extract_bubbles_reference(
        tl, min_duration_ms=10.0, include_sync_spans=False
    )

    def measure():
        t0 = time.perf_counter()
        extract_bubbles_reference(tl, min_duration_ms=0.0)
        quad = time.perf_counter() - t0
        sweep = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            extract_bubbles(tl, min_duration_ms=0.0)
            sweep = min(sweep, time.perf_counter() - t0)
        return quad, sweep

    # Allow one re-measurement: wall-clock on shared runners is noisy.
    for attempt in (1, 2):
        quad, sweep = measure()
        if quad >= 5 * sweep:
            break
    assert quad >= 5 * sweep, f"quadratic={quad:.4f}s sweep={sweep:.4f}s (< 5x)"


def _fill_workload():
    """Long NT chains so per-layer interpolation dominates enumeration."""
    comps = {f"enc{i}": [3.0 + 0.1 * j for j in range(80)] for i in range(3)}
    backbone = timed_component("bb", [1.0], trainable=True)
    specs = [timed_component(n, v) for n, v in comps.items()]
    model = ModelSpec("fill-bench", [backbone] + specs, backbone_names=("bb",))
    profile = ProfileDB.from_layer_times(
        {**{n: [(t, 0.0) for t in v] for n, v in comps.items()},
         "bb": [(1.0, 1.0)]},
        batches=(1.0, 64.0),
        trainable={**{n: False for n in comps}, "bb": True},
        scale_with_batch=True,
    )
    # Constant-idle-set segments of the 8-device fuzz are short (a few
    # ms), so the filler sees many small bubbles — the regime where the
    # per-state prefix arrays are re-requested over and over.  Several
    # fuzz seeds are concatenated (time-shifted) so the wall-clock
    # comparison is not dominated by timer noise.
    bubbles = []
    shift = 0.0
    for seed in (11, 13, 17):
        extracted = extract_bubbles(_fuzzed_timeline(seed=seed),
                                    min_duration_ms=2.0)
        for b in extracted:
            bubbles.append(
                type(b)(start=b.start + shift, end=b.end + shift,
                        devices=b.devices, weight=b.weight)
            )
        shift += _fuzzed_timeline(seed=seed).makespan + 10.0
    return model, profile, bubbles


def test_cold_vs_warm_fill_prefix_cache(benchmark):
    model, profile, bubbles = _fill_workload()
    caches = PlannerCaches()

    def run_fill():
        filler = BubbleFiller(profile, model, batch=64, caches=caches)
        return filler.fill(bubbles, leftover_devices=DEVICES)

    def measure():
        # Best-of-2 cold (each genuinely cold: the cache is reset) vs
        # best-of-3 warm, so one scheduler stall cannot flip the ratio.
        cold = float("inf")
        cold_report = None
        for _ in range(2):
            caches.prefixes.clear(profile)
            t0 = time.perf_counter()
            cold_report = run_fill()
            cold = min(cold, time.perf_counter() - t0)
        entries = caches.prefixes.entry_count(profile)
        assert entries > 0, "cold fill must populate the prefix cache"
        warm = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            warm_report = run_fill()
            warm = min(warm, time.perf_counter() - t0)
            # Bit-identical outcome and no cache growth on warm passes.
            assert warm_report == cold_report
            assert caches.prefixes.entry_count(profile) == entries
        return cold, warm

    report = benchmark.pedantic(run_fill, rounds=1, iterations=1)
    assert report.items and report.filled_device_time_ms > 0

    for attempt in (1, 2):
        cold, warm = measure()
        if cold >= 1.15 * warm:
            break
    assert cold >= 1.15 * warm, f"cold={cold:.4f}s warm={warm:.4f}s (< 1.15x)"


# ---------------------------------------------------------------------------
# lookahead perf gates (ISSUE 5 acceptance)
# ---------------------------------------------------------------------------


def _sd_sweep(profile, model, strategy, batches=(64, 128, 256, 384)):
    """One cold fig13a-flavoured planner sweep (single machine scale)."""
    cluster = p4de_cluster(1)
    opts = replace(BENCH_PLANNER_OPTIONS, fill_strategy=strategy)
    planner = DiffusionPipePlanner(
        model, cluster, profile, options=opts, caches=PlannerCaches()
    )
    t0 = time.perf_counter()
    plans = {b: planner.plan(b).plan for b in batches}
    return time.perf_counter() - t0, plans


def test_lookahead_planner_sweep_within_5x_of_greedy(benchmark):
    """The cold-search perf gate: with dominance pruning and the
    narrow-by-default adaptive beam, a lookahead planner sweep costs at
    most 5x the greedy sweep (it was 20-100x before the rebuild), while
    never reporting a larger NT leftover on any sweep point."""
    model = stable_diffusion_v2_1()
    profile = Profiler(p4de_cluster(1)).profile(model)
    # Warm the profile interpolation caches so both sweeps measure
    # planning, not first-touch interpolation.
    _sd_sweep(profile, model, "greedy")

    def measure():
        greedy_s = lookahead_s = float("inf")
        for _ in range(2):
            tg, greedy_plans = _sd_sweep(profile, model, "greedy")
            tl, lookahead_plans = _sd_sweep(profile, model, "lookahead")
            greedy_s = min(greedy_s, tg)
            lookahead_s = min(lookahead_s, tl)
        return greedy_s, lookahead_s, greedy_plans, lookahead_plans

    benchmark.pedantic(
        lambda: _sd_sweep(profile, model, "lookahead"), rounds=1, iterations=1
    )
    for attempt in (1, 2):
        greedy_s, lookahead_s, greedy_plans, lookahead_plans = measure()
        if lookahead_s <= 5.0 * greedy_s:
            break
    assert lookahead_s <= 5.0 * greedy_s, (
        f"lookahead sweep {lookahead_s:.3f}s vs greedy {greedy_s:.3f}s "
        f"(> 5x)"
    )
    # Per fixed (D, S, M) config lookahead's leftover <= greedy's, so
    # its iteration time is <= and its throughput >= — and taking the
    # argmax over configs preserves the inequality.  (The *leftover* of
    # the selected plans is not comparable across sweeps: the two
    # strategies may select different configs.)
    for b, plan in greedy_plans.items():
        assert lookahead_plans[b].throughput >= plan.throughput, b


def _lookahead_workload():
    """A lookahead-heavy fill: long NT chains over many fuzzed bubbles
    (the regime where the cold search costs real time).

    Bubble edges are quantised to a dyadic (0.5 ms) grid so that
    time-shifting the list by a power of two preserves every duration
    bit for bit — the shape key is exact floats."""
    model, profile, fuzzed = _fill_workload()
    bubbles = []
    t0 = 0.0
    for b in fuzzed:
        dur = max(2.0, round(2.0 * b.duration) / 2.0)
        bubbles.append(
            Bubble(start=t0, end=t0 + dur, devices=b.devices, weight=b.weight)
        )
        t0 += dur + 1.0
    return model, profile, bubbles


def test_warm_vs_cold_shape_cache_speedup(benchmark):
    """A warm shape-cache hit replays the plan without searching: at
    least 5x faster than the cold lookahead search, bit-identical
    report, and hit/miss accounting as expected.  The warm pass uses
    time-shifted bubbles, proving the cache keys on the (duration,
    weight) shape rather than on absolute times."""
    model, profile, bubbles = _lookahead_workload()
    shift = float(2 ** 20)  # exact for the dyadic-grid bubble edges
    shifted = [
        Bubble(start=b.start + shift, end=b.end + shift,
               devices=b.devices, weight=b.weight)
        for b in bubbles
    ]
    assert [(b.duration, b.weight) for b in shifted] == [
        (b.duration, b.weight) for b in bubbles
    ]

    def run(bubble_list, cache):
        filler = BubbleFiller(
            profile, model, batch=64, strategy="lookahead", fill_cache=cache
        )
        return filler.fill(bubble_list, leftover_devices=DEVICES)

    def measure():
        cache = FillShapeCache()
        t0 = time.perf_counter()
        cold_report = run(bubbles, cache)
        cold = time.perf_counter() - t0
        assert cache.final_misses == 1 and cache.final_hits == 0
        warm = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            warm_report = run(shifted, cache)
            warm = min(warm, time.perf_counter() - t0)
            # The replay must rebind bubble indices but match the cold
            # report in every time/size field.
            assert warm_report.leftover_ms == cold_report.leftover_ms
            assert (
                warm_report.filled_device_time_ms
                == cold_report.filled_device_time_ms
            )
            assert warm_report.states_pruned == cold_report.states_pruned
            assert warm_report.beam_peak == cold_report.beam_peak
            assert len(warm_report.items) == len(cold_report.items)
        assert cache.final_hits >= 3
        # Identical shape (not shifted) must be bit-identical outright.
        assert run(bubbles, cache) == cold_report
        return cold, warm

    benchmark.pedantic(
        lambda: run(bubbles, FillShapeCache()), rounds=1, iterations=1
    )
    for attempt in (1, 2):
        cold, warm = measure()
        if cold >= 5.0 * warm:
            break
    assert cold >= 5.0 * warm, f"cold={cold:.4f}s warm={warm:.4f}s (< 5x)"
