"""Fig. 5: execution-time distribution of non-trainable layers at B=64.

Paper shape: text-encoder layers (indices 0-21) run in 0.1-10 ms; most
image-encoder layers take a moderate < 30 ms; a few extra-long layers
exceed 400 ms.  ControlNet shows the same shape over ~65 layers.
"""

from __future__ import annotations

import pytest

from repro.harness import format_bars, nt_layer_times


def _times(model, profile):
    return nt_layer_times(model, profile, batch=64)


@pytest.mark.parametrize("which", ["sd", "controlnet"])
def test_fig5_layer_times(
    benchmark,
    which,
    sd_vanilla,
    sd_profile,
    controlnet_vanilla,
    controlnet_profile,
):
    model, profile = (
        (sd_vanilla, sd_profile)
        if which == "sd"
        else (controlnet_vanilla, controlnet_profile)
    )
    times = benchmark.pedantic(_times, args=(model, profile), rounds=1, iterations=1)
    values = [t for _, _, t in times]
    print()
    top = sorted(times, key=lambda t: -t[2])[:8]
    print(
        format_bars(
            [f"{c}[{i}]" for c, i, _ in top], [t for _, _, t in top], unit=" ms"
        )
    )

    n = len(values)
    if which == "sd":
        assert n == 42  # 23 text-encoder + 19 VAE layers
    else:
        assert n == 65  # + 23 hint-encoder layers

    # Text encoder: short layers (0.05-10 ms).
    text = [t for c, _, t in times if c == "text_encoder"]
    assert all(0.05 <= t <= 10.0 for t in text)
    # A large share of moderate layers (< 30 ms).
    moderate = [t for t in values if t < 30.0]
    assert len(moderate) / n > 0.7
    # Extra-long layers exist (> 400 ms).
    assert max(values) > 400.0
    # And more than one layer above 100 ms (the partial-batch motivators).
    assert sum(1 for t in values if t > 100.0) >= 2
