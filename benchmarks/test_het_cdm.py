"""Heterogeneous bidirectional (CDM) replication on a non-divisible
cluster (D=6, S<=4), CDM-LSUN profile.

PR 2's sibling (``test_het_replication.py``) promoted per-stage replica
counts on the 1F1B path; this sweep exercises the bidirectional CDM
partitioner's heterogeneous path end to end — 6 GPUs, one pipeline
group, up to 4 chain positions, each choosing a replica count shared by
its co-located down/up stages — and checks:

* the planner returns valid heterogeneous bidirectional plans (both
  chains contiguous and complete, device-conserving, co-located replica
  agreement, non-uniform replicas where ``S !| D``);
* a repeated sweep hits the per-profile heterogeneous CDM DP memo: the
  second pass is at least 5x faster and returns bit-identical plans.

It is deliberately light enough for the fast CI suite
(``-m "not slow" --benchmark-disable``): one batch and one micro-batch
count keep the number of distinct DP tables small.
"""

from __future__ import annotations

import time

from repro.cluster import single_node
from repro.core.planner import DiffusionPipePlanner, PlannerCaches, PlannerOptions
from repro.models.zoo import cdm_lsun
from repro.profiling import Profiler

#: 6 GPUs, one pipeline group of 6: S in {2, 3} divides D, S=4 does not.
HET_CDM_OPTIONS = PlannerOptions(
    max_stages=4,
    micro_batch_counts=(4,),
    group_sizes=(6,),
    heterogeneous_replication=True,
)

BATCHES = (96,)


def _planner(profile, model, cluster, caches=None, **overrides):
    options = HET_CDM_OPTIONS
    if overrides:
        from dataclasses import replace

        options = replace(options, **overrides)
    return DiffusionPipePlanner(
        model, cluster, profile, options=options,
        caches=caches if caches is not None else PlannerCaches(),
    )


def _check_bidirectional(partition, D):
    """Contiguity, coverage, device conservation and co-located replica
    agreement of a heterogeneous bidirectional plan."""
    assert partition.is_bidirectional
    S = partition.num_stages
    for chain in (partition.down, partition.up):
        assert chain[0].lo == 0
        for a, b in zip(chain, chain[1:]):
            assert a.hi == b.lo
        assert all(st.replicas >= 1 for st in chain)
    assert sum(st.replicas for st in partition.down) <= D
    for i in range(S):
        assert partition.down[i].replicas == partition.up[S - 1 - i].replicas
    assert partition.group_size == D


def test_het_cdm_sweep_end_to_end(benchmark):
    """Full planner sweep (partition + simulate + fill) on D=6."""
    model = cdm_lsun()
    cluster = single_node(6)
    profile = Profiler(cluster).profile(model)
    planner = _planner(profile, model, cluster)

    plans = benchmark.pedantic(
        lambda: {b: planner.plan(b).plan for b in BATCHES}, rounds=1, iterations=1
    )
    for b, plan in plans.items():
        assert plan.throughput > 0, f"infeasible at batch {b}"
        _check_bidirectional(plan.partition, 6)

    # The non-divisible combo the uniform planner would skip: S=4 chain
    # positions on 6 devices.  The DP must return a valid bidirectional
    # plan with non-uniform replicas (uniform is impossible: 4 !| 6).
    ev = planner.evaluate(96, group_size=6, num_stages=4, num_micro=4)
    assert ev is not None
    _check_bidirectional(ev.plan.partition, 6)
    chain = ev.plan.partition.down
    assert len({st.replicas for st in chain}) > 1, [st.replicas for st in chain]


def test_het_cdm_dp_memo_speedup():
    """A repeated sweep (fresh planner, shared PlannerCaches, same
    ProfileDB) must hit the per-profile heterogeneous CDM DP memo and
    the shared timeline memo: >= 5x faster, bit-identical plans.

    Filling is disabled so the measured work is the partition DP and the
    schedule simulation — the parts the memos cover (filling is
    benchmarked above).
    """
    model = cdm_lsun()
    cluster = single_node(6)

    def measure():
        # A fresh PlannerCaches isolates the timeline memo, and a fresh
        # ProfileDB guarantees cold per-profile DP tables, regardless of
        # what ran earlier.
        caches = PlannerCaches()
        profile = Profiler(cluster).profile(model)

        def sweep():
            planner = _planner(
                profile, model, cluster, caches=caches,
                enable_bubble_filling=False,
            )
            return {b: planner.plan(b).plan for b in BATCHES}

        t0 = time.perf_counter()
        first = sweep()
        cold = time.perf_counter() - t0
        tables = caches.cdm_het.entry_count(profile)
        assert tables > 0, "cold sweep must build heterogeneous CDM DP tables"
        # Best of three warm passes: the warm path is milliseconds of
        # cache reads, so a single scheduler stall on a shared CI
        # runner could otherwise sink the ratio.
        warm = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            second = sweep()
            warm = min(warm, time.perf_counter() - t0)
            assert first == second, "memoized sweep must be bit-identical"
        # Structural memo-hit evidence, independent of wall clock: the
        # warm sweeps added no DP tables.
        assert caches.cdm_het.entry_count(profile) == tables
        return cold, warm

    # The wall-clock ratio is the acceptance criterion, but timing on
    # shared runners is noisy — allow one full re-measurement (a fresh
    # profile makes the first pass genuinely cold again).
    for attempt in (1, 2):
        cold, warm = measure()
        if cold >= 5 * warm:
            break
    assert cold >= 5 * warm, f"cold={cold:.3f}s warm={warm:.3f}s (< 5x)"


def test_divisible_cdm_unaffected_by_het_flag():
    """On S | D combos the heterogeneous CDM DP may only match or
    improve the uniform objective (uniform replication is one of the
    states the general recursion enumerates)."""
    model = cdm_lsun()
    cluster = single_node(6)
    profile = Profiler(cluster).profile(model)
    het = _planner(profile, model, cluster)
    uni = _planner(profile, model, cluster, heterogeneous_replication=False)
    for S in (2, 3):  # both divide 6
        ev_het = het.evaluate(96, group_size=6, num_stages=S, num_micro=4)
        ev_uni = uni.evaluate(96, group_size=6, num_stages=S, num_micro=4)
        assert ev_het is not None and ev_uni is not None
        assert (
            ev_het.plan.partition.t_max_ms
            <= ev_uni.plan.partition.t_max_ms + 1e-9
        )
