"""Elastic replanning: the ISSUE's warm >= 5x cold gate.

An :class:`~repro.core.ElasticSession` rides out a leave/rejoin
round-trip (a machine is reclaimed, then capacity comes back) and
replans after every event against one shared
:class:`~repro.core.PlannerCaches`.  The rejoin restores the original
cluster *identity* — :func:`~repro.core.apply_event` is pure and the
spec is canonicalised — so the post-rejoin replan must hit every
cluster-keyed memo warm:

* **>= 5x faster** than a cold plan (fresh caches, fresh profile) of
  the same membership, and
* **bit-identical**: the warm :class:`~repro.core.plan.ExecutionPlan`
  compares equal to both the session's first plan and the cold
  reference plan.

Weak scaling (``global_batch = batch_per_device * world``) keeps the
per-group batch world-independent, so the intermediate world-3 replan
neither evicts nor splits the warm world-6 entries.

Light enough for the fast CI suite (``--benchmark-disable``).
"""

from __future__ import annotations

import time

from repro.cluster.topology import ClusterSpec
from repro.core import (
    DiffusionPipePlanner,
    ElasticEvent,
    ElasticSession,
    PlannerCaches,
    PlannerOptions,
)
from repro.models.zoo import stable_diffusion_v2_1
from repro.profiling import Profiler

#: two toy 3-device machines: small enough that the sweep stays in CI
#: budget, two machines so a machine-granularity leave is legal
CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=3)
BATCH_PER_DEVICE = 16.0

OPTIONS = PlannerOptions(
    max_stages=4,
    micro_batch_counts=(1, 2, 3, 4, 6, 8),
    group_sizes=(3,),
    heterogeneous_replication=True,
    enable_bubble_filling=False,
)


def test_elastic_replan_warm_5x_and_bit_identical():
    model = stable_diffusion_v2_1()

    def measure():
        # Cold reference: fresh caches AND a fresh profile of the same
        # membership — what planning after the rejoin would cost with
        # no elastic session holding the warm state.
        profile = Profiler(CLUSTER).profile(model)
        t0 = time.perf_counter()
        cold_ev = DiffusionPipePlanner(
            model, CLUSTER, profile, options=OPTIONS, caches=PlannerCaches()
        ).plan(BATCH_PER_DEVICE * CLUSTER.world_size)
        cold = time.perf_counter() - t0

        session = ElasticSession(
            model,
            CLUSTER,
            batch_per_device=BATCH_PER_DEVICE,
            options=OPTIONS,
            caches=PlannerCaches(),
        )
        first = session.replan()
        session.apply(ElasticEvent("leave"))
        mid = session.replan()
        # The shrunken world is a different membership with a different
        # weak-scaled batch; it must not be confused with the original.
        assert session.cluster.world_size == 3
        assert mid.plan.global_batch != first.plan.global_batch

        session.apply(ElasticEvent("join"))
        assert session.cluster == CLUSTER, (
            "leave+join round-trip must restore the cluster identity"
        )
        tl_misses = session.caches.stats().store("timelines").misses
        warm = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            warm_ev = session.replan()
            warm = min(warm, time.perf_counter() - t0)
            assert warm_ev.plan == first.plan == cold_ev.plan, (
                "post-rejoin replan must be bit-identical to the "
                "pre-churn and cold plans"
            )
        # The replan must be memo-served, not merely fast: restoring an
        # identity may not rebuild a single timeline.
        assert session.caches.stats().store("timelines").misses == tl_misses
        return cold, warm

    # One retry absorbs scheduler noise on shared CI boxes, mirroring
    # the sibling snapshot benchmark.
    for attempt in (1, 2):
        cold, warm = measure()
        if cold >= 5 * warm:
            break
    assert cold >= 5 * warm, f"cold={cold:.3f}s warm={warm:.3f}s (< 5x)"
