"""Fig. 6: the top-3 longest non-trainable layers across batch sizes,
against the longest pipeline bubble at 4 micro-batches and 2/3/4 stages.

Paper shape: at full batch (64) the top layers (up to ~400 ms) exceed
every bubble; reducing the layer's batch to ~16 brings most of them
under the longest bubble — the motivation for partial-batch layers.
"""

from __future__ import annotations

import pytest

from repro.harness import (
    format_table,
    longest_bubble_by_stages,
    top_layer_series,
)

BATCHES = (4, 8, 16, 24, 32, 48, 64)


def _series_and_bubbles(model, cluster, profile):
    series = top_layer_series(model, profile, top_k=3, batches=BATCHES)
    bubbles = longest_bubble_by_stages(
        model, cluster, profile, batch=64, num_micro=4
    )
    return series, bubbles


@pytest.mark.parametrize("which", ["sd", "controlnet"])
def test_fig6_long_layers(
    benchmark,
    which,
    cluster8,
    sd_vanilla,
    sd_profile,
    controlnet_vanilla,
    controlnet_profile,
):
    model, profile = (
        (sd_vanilla, sd_profile)
        if which == "sd"
        else (controlnet_vanilla, controlnet_profile)
    )
    series, bubbles = benchmark.pedantic(
        _series_and_bubbles, args=(model, cluster8, profile), rounds=1, iterations=1
    )

    rows = []
    for k, s in enumerate(series):
        rows.append(
            [f"top-{k + 1} ({s.component}[{s.layer}])"]
            + [f"{t:.0f}" for t in s.times_ms]
        )
    for S, t in sorted(bubbles.items()):
        rows.append([f"longest bubble S={S}", *[""] * (len(BATCHES) - 1), f"{t:.0f}"])
    print()
    print(format_table(["series \\ batch", *map(str, BATCHES)], rows))

    top1 = series[0]
    t64 = top1.times_ms[BATCHES.index(64)]
    t16 = top1.times_ms[BATCHES.index(16)]
    longest = max(bubbles.values())
    # Layer time grows ~linearly with batch and the top layer exceeds
    # every bubble at full batch...
    assert list(top1.times_ms) == sorted(top1.times_ms)
    assert t64 > longest
    # ...but fits the longest bubble at batch 16 (the paper's
    # observation motivating partial-batch processing).
    assert t16 < longest
    # Bubble length grows with stage count.
    svals = [bubbles[s] for s in sorted(bubbles)]
    assert svals == sorted(svals)
