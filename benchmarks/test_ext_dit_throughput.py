"""Extension (§7): DiffusionPipe on a transformer-backbone model.

The paper's conclusion claims the bubble-filling design "can extend to
... training or fine-tuning diffusion models with transformer
backbones, together with multimodal models with frozen encoder
components".  This benchmark exercises the claim on a PixArt-alpha-style
DiT-XL with a frozen T5-XXL text encoder (whose forward pass dwarfs
CLIP's): bubble filling should again nearly eliminate bubbles and beat
the pipeline baselines.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.baselines import (
    ChimeraBaseline,
    DataParallelBaseline,
    GPipeBaseline,
    SPPBaseline,
)
from repro.cluster import single_node
from repro.core import DiffusionPipePlanner, PlannerOptions
from repro.harness import format_table, pct
from repro.models.zoo import dit_xl
from repro.profiling import Profiler

BATCHES = (128, 256, 384)


def _sweep():
    cluster = single_node(8)
    model = dit_xl()
    profile = Profiler(cluster).profile(model)
    opts = PlannerOptions(group_sizes=(2, 4, 8))
    planner = DiffusionPipePlanner(model, cluster, profile, options=opts)
    systems = {
        "SPP": SPPBaseline(model, cluster, profile, options=opts),
        "GPipe": GPipeBaseline(model, cluster, profile),
        "Chimera": ChimeraBaseline(model, cluster, profile),
        "DeepSpeed": DataParallelBaseline(model, cluster, profile),
    }
    rows = {}
    ratios = {}
    for b in BATCHES:
        ev = planner.plan(b)
        rows[("DiffusionPipe", b)] = ev.plan.throughput
        ratios[b] = (ev.plan.bubble_ratio_unfilled, ev.plan.bubble_ratio_filled)
        for name, eng in systems.items():
            res = eng.run(b)
            rows[(name, b)] = 0.0 if res.oom else res.throughput
    return rows, ratios


def test_ext_dit_throughput(benchmark):
    rows, ratios = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    systems = ["DiffusionPipe", "SPP", "GPipe", "Chimera", "DeepSpeed"]
    table = [
        [s, *(f"{rows[(s, b)]:.0f}" for b in BATCHES)] for s in systems
    ]
    print()
    print(format_table(
        ["system \\ batch", *map(str, BATCHES)], table,
        title="DiT-XL (PixArt-alpha-style) throughput on 8 GPUs (samples/s)",
    ))
    for b in BATCHES:
        before, after = ratios[b]
        print(f"B={b}: bubble ratio {pct(before)} -> {pct(after)}")
        # Filling nearly eliminates bubbles even for a DiT backbone.
        assert after < 0.05
        # And beats every pipeline baseline.
        for s in ("SPP", "GPipe", "Chimera"):
            assert rows[("DiffusionPipe", b)] >= rows[(s, b)] * 0.999
    # The heavy frozen part makes DiffusionPipe competitive with DDP
    # even at a single node (unlike SD, like ControlNet).
    assert rows[("DiffusionPipe", 256)] >= rows[("DeepSpeed", 256)] * 0.95
