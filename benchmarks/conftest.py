"""Shared fixtures for the benchmark suite.

Profiles are deterministic and depend only on the device model, so they
are computed once per session and shared across benchmarks.
"""

from __future__ import annotations

import pytest

from repro.cluster import single_node
from repro.models.zoo import (
    cdm_imagenet,
    cdm_lsun,
    controlnet_v1_0,
    stable_diffusion_v2_1,
)
from repro.profiling import Profiler


@pytest.fixture(scope="session")
def cluster8():
    return single_node(8)


@pytest.fixture(scope="session")
def sd_vanilla():
    return stable_diffusion_v2_1(self_conditioning=False)


@pytest.fixture(scope="session")
def sd_selfcond():
    return stable_diffusion_v2_1(self_conditioning=True)


@pytest.fixture(scope="session")
def controlnet_vanilla():
    return controlnet_v1_0(self_conditioning=False)


@pytest.fixture(scope="session")
def controlnet_selfcond():
    return controlnet_v1_0(self_conditioning=True)


@pytest.fixture(scope="session")
def lsun():
    return cdm_lsun()


@pytest.fixture(scope="session")
def imagenet():
    return cdm_imagenet()


@pytest.fixture(scope="session")
def sd_profile(cluster8, sd_vanilla):
    return Profiler(cluster8).profile(sd_vanilla)


@pytest.fixture(scope="session")
def controlnet_profile(cluster8, controlnet_vanilla):
    return Profiler(cluster8).profile(controlnet_vanilla)


@pytest.fixture(scope="session")
def lsun_profile(cluster8, lsun):
    return Profiler(cluster8).profile(lsun)


@pytest.fixture(scope="session")
def imagenet_profile(cluster8, imagenet):
    return Profiler(cluster8).profile(imagenet)
