"""Fig. 14: pipeline bubble ratio on 8 GPUs at batch sizes 256 and 384.

Paper: DiffusionPipe under 5 % for both SD v2.1 and ControlNet v1.0,
against ~15-25 % (SPP) and ~20-40 % (GPipe).
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.harness import bubble_ratio_comparison, format_table, pct

BATCHES = (256, 384)


def _ratios(model, cluster, profile):
    return bubble_ratio_comparison(model, cluster, profile, batches=BATCHES)


@pytest.mark.parametrize("which", ["sd", "controlnet"])
def test_fig14_bubble_ratio(
    benchmark,
    which,
    cluster8,
    sd_vanilla,
    sd_profile,
    controlnet_vanilla,
    controlnet_profile,
):
    model, profile = (
        (sd_vanilla, sd_profile)
        if which == "sd"
        else (controlnet_vanilla, controlnet_profile)
    )
    ratios = benchmark.pedantic(
        _ratios, args=(model, cluster8, profile), rounds=1, iterations=1
    )
    rows = [
        [system, *(pct(ratios[system][b]) for b in BATCHES)]
        for system in ("DiffusionPipe", "GPipe", "SPP")
    ]
    print()
    print(
        format_table(
            [f"{model.name} / batch", *map(str, BATCHES)],
            rows,
            title="Fig. 14 - pipeline bubble ratio, 8 GPUs",
        )
    )
    for b in BATCHES:
        # The headline claim: DiffusionPipe's bubbles nearly eliminated
        # (paper: < 5 %; our best-throughput plan lands at ~5-6 % under
        # the placement-aware strict accounting, which refuses credit
        # for fill windows that ride a gradient-sync prefix instead of
        # strict idle — the pre-PR-5 work-on-strict-idle-first
        # assumption reported ~5 % by crediting exactly that overlap).
        assert ratios["DiffusionPipe"][b] < 0.07
        # And dramatically lower than both pipeline baselines.
        assert ratios["DiffusionPipe"][b] < 0.5 * ratios["SPP"][b]
        assert ratios["DiffusionPipe"][b] < 0.5 * ratios["GPipe"][b]
        # GPipe's fixed 2-stage equal split wastes at least ~10 %.
        assert ratios["GPipe"][b] > 0.10
