"""Table 1: ratio of non-trainable forward time to trainable
forward+backward time on one A100, at batch sizes 8/16/32/64.

Paper values: SD v2.1 38/41/43/44 %, ControlNet v1.0 76/81/86/89 %.
"""

from __future__ import annotations

from repro.harness import ExperimentReport, format_table

BATCHES = (8, 16, 32, 64)
PAPER = {
    "stable-diffusion-v2.1": (0.38, 0.41, 0.43, 0.44),
    "controlnet-v1.0": (0.76, 0.81, 0.86, 0.89),
}


def nt_over_trainable(model, profile, batch: float) -> float:
    nt = sum(
        profile.component_fwd_ms(c.name, batch) for c in model.non_trainable
    )
    t = sum(
        profile.component_train_ms(n, batch) for n in model.backbone_names
    )
    return nt / t


def _compute(models_profiles):
    report = ExperimentReport("Table 1 - NT/T time ratio")
    for model, profile in models_profiles:
        for b, paper in zip(BATCHES, PAPER[model.name]):
            measured = nt_over_trainable(model, profile, b)
            report.add(f"{model.name} B={b}", "NT/T", paper, round(measured, 3))
    return report


def test_table1_nt_ratio(
    benchmark, sd_vanilla, sd_profile, controlnet_vanilla, controlnet_profile
):
    pairs = [(sd_vanilla, sd_profile), (controlnet_vanilla, controlnet_profile)]
    report = benchmark.pedantic(_compute, args=(pairs,), rounds=1, iterations=1)
    print()
    print(report.to_table())
    rows = []
    for model, profile in pairs:
        row = [model.name]
        for b in BATCHES:
            row.append(f"{100 * nt_over_trainable(model, profile, b):.0f}%")
        rows.append(row)
    print(format_table(["Model / Batch size", *map(str, BATCHES)], rows))
    # Shape assertions: every cell within 3 pp of the paper; ratio
    # increases with batch size for both models.
    assert report.max_abs_deviation() < 0.08
    for model, profile in pairs:
        ratios = [nt_over_trainable(model, profile, b) for b in BATCHES]
        assert ratios == sorted(ratios)
