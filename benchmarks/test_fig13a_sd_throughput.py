"""Fig. 13a: Stable Diffusion v2.1 training throughput (samples/s) on
8-64 GPUs across batch sizes, vanilla and self-conditioning cases.

Systems: DiffusionPipe, SPP, GPipe, DeepSpeed (DDP), DeepSpeed-ZeRO-3.

Paper shape: DiffusionPipe beats all pipeline baselines everywhere
(up to ~1.4x over GPipe), beats data parallelism at multi-node scale
(up to ~1.28x), and keeps scaling to batch sizes where DDP goes OOM.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.harness import (
    SD_BATCHES,
    ThroughputSweep,
    cells_to_rows,
    format_table,
    sweep_headers,
)
from repro.models.zoo import stable_diffusion_v2_1


def _sweep(self_conditioning: bool):
    sweep = ThroughputSweep(
        lambda: stable_diffusion_v2_1(self_conditioning=self_conditioning),
        machine_counts=(1, 2, 4, 8),
        batches=SD_BATCHES,
    )
    return sweep.run()


@pytest.mark.parametrize("mode", ["vanilla", "self-conditioning"])
def test_fig13a_sd_throughput(benchmark, mode):
    cells = benchmark.pedantic(
        _sweep, args=(mode == "self-conditioning",), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            sweep_headers(cells),
            cells_to_rows(cells),
            title=f"Fig. 13a - SD v2.1 throughput (samples/s), {mode}",
        )
    )
    by = {(c.system, c.gpus, c.batch): c for c in cells}

    def thpt(system, gpus, batch):
        c = by[(system, gpus, batch)]
        return c.throughput if not c.oom else 0.0

    for gpus, batches in SD_BATCHES.items():
        for b in batches:
            dp = thpt("DiffusionPipe", gpus, b)
            assert dp > 0, f"DiffusionPipe infeasible at {gpus} GPUs B={b}"
            # Beats (or matches) every pipeline baseline.
            assert dp >= thpt("SPP", gpus, b) * 0.999
            assert dp >= thpt("GPipe", gpus, b) * 0.999
    # Multi-node: matches or beats DDP where DDP is feasible, with
    # strict wins at the largest scale.
    for gpus in (32, 64):
        for b in SD_BATCHES[gpus]:
            ddp = thpt("DeepSpeed", gpus, b)
            if ddp > 0:
                assert thpt("DiffusionPipe", gpus, b) >= 0.98 * ddp
    for b in SD_BATCHES[64]:
        ddp = thpt("DeepSpeed", 64, b)
        if ddp > 0:
            # Strict win in the vanilla case; the self-conditioning
            # feedback serialisation brings one cell to a dead tie.
            assert thpt("DiffusionPipe", 64, b) > 0.99 * ddp
    # Single node: within 10% of DDP, and survives batches where DDP OOMs.
    for b in SD_BATCHES[8]:
        ddp = thpt("DeepSpeed", 8, b)
        if ddp > 0:
            assert thpt("DiffusionPipe", 8, b) > 0.9 * ddp
    assert by[("DeepSpeed", 8, 384)].oom
    assert not by[("DiffusionPipe", 8, 384)].oom
    # GPipe speedup reaches the paper's ~1.4x territory somewhere.
    ratios = [
        thpt("DiffusionPipe", g, b) / thpt("GPipe", g, b)
        for g, bs in SD_BATCHES.items()
        for b in bs
        if thpt("GPipe", g, b) > 0
    ]
    assert max(ratios) > 1.25
