from setuptools import setup, find_packages

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
